//! The event-driven simulation engine.
//!
//! Because the partitioned scheme makes channels independent (a channel
//! only ever executes its own task subset, and only during its mode's
//! useful windows), the engine simulates one channel at a time. Time
//! advances **event to event** — job releases, useful-window edges and
//! job completions — never tick by tick:
//!
//! * useful windows are derived lazily from the cycle index `k`
//!   (`[kP + offset, kP + offset + Q̃)`, clamped to the horizon) instead
//!   of being materialised up front;
//! * when the ready queue runs dry and the next release falls beyond the
//!   current window, the engine jumps straight to the first window that
//!   can run it, skipping every idle cycle in between;
//! * jobs are dispatched by index into a flat release array, with
//!   remaining-work and completion-time kept in parallel vectors — no
//!   per-job cloning or hashing on the hot path.
//!
//! Fault classification is a single slice-major pass per channel: slices
//! are produced in time order and the schedule's fault windows are sorted
//! and disjoint, so one monotone cursor finds each slice's candidate
//! fault in O(slices + faults). Tick granularity is materialised only
//! inside fault windows (the overlap spans the classifier examines);
//! everything else is interval arithmetic.
//!
//! The result is **bit-identical** to the original slot-stepping engine,
//! which survives as [`crate::reference`] — an executable specification
//! the proptest battery and the `ftsched bench --sim` bitwise gate check
//! this engine against.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use ftsched_analysis::Algorithm;
use ftsched_platform::{classify_outcome, ChannelLayout, FaultSchedule};
use ftsched_task::{Duration, Mode, PerMode, SystemPartition, Task, TaskSet, Time};

use crate::error::SimError;
use crate::job::{release_jobs_into, Job, JobId};
use crate::queue::ReadyQueue;
use crate::report::{OutcomeCounts, SimulationReport};
use crate::slot::{SlotSchedule, UsefulWindow};
use crate::trace::{ExecutionSlice, JobRecord, Trace};

/// Configuration of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationConfig {
    /// Length of the simulated interval, in paper time units.
    pub horizon: f64,
    /// Transient faults injected during the run.
    pub fault_schedule: FaultSchedule,
    /// Whether to keep the full trace in the report (disable for large
    /// campaigns).
    pub record_trace: bool,
    /// Whether to record every completed job's response time, grouped per
    /// task, in [`SimulationReport::response_times`]. Off by default: the
    /// campaign engine enables it only when a spec asks for response-time
    /// histograms, so trials that don't need the data pay nothing.
    pub record_response_times: bool,
}

impl SimulationConfig {
    /// A fault-free run over the given horizon with trace recording on.
    pub fn fault_free(horizon: f64) -> Self {
        SimulationConfig {
            horizon,
            fault_schedule: FaultSchedule::none(),
            record_trace: true,
            record_response_times: false,
        }
    }
}

/// Reusable scratch storage for [`simulate_in`]: the job list, execution
/// slices, job records and the per-job dispatch state of one simulation
/// run (plus the window/queue/completion buffers of the slot-stepping
/// [`crate::reference`] engine, which shares the arena).
///
/// A fresh arena is allocated by the convenience [`simulate`]; campaign
/// kernels that run thousands of trials keep one arena per worker and
/// pass it to [`simulate_in`], so every trial after the first reuses the
/// buffers instead of reallocating them. The arena carries **no state
/// between runs** — every buffer is cleared before use, and reports are
/// bit-identical with or without reuse.
#[derive(Debug)]
pub struct SimArena {
    pub(crate) jobs: Vec<Job>,
    pub(crate) windows: Vec<UsefulWindow>,
    pub(crate) queue: ReadyQueue,
    pub(crate) slices: Vec<ExecutionSlice>,
    pub(crate) records: Vec<JobRecord>,
    pub(crate) completions: HashMap<JobId, Time>,
    /// Indices (into `jobs`) of released-but-unfinished jobs.
    ready: Vec<u32>,
    /// Remaining work per job, parallel to `jobs`.
    remaining: Vec<Duration>,
    /// Completion instant per job, parallel to `jobs`.
    completed_at: Vec<Option<Time>>,
    /// Job index behind each entry of `slices` (the trace slice itself
    /// carries only the `JobId`), so the fault classifier can mark jobs
    /// in O(1).
    slice_jobs: Vec<u32>,
    /// Fault-overlap flag per job, parallel to `jobs`.
    fault_marks: Vec<bool>,
}

impl Default for SimArena {
    fn default() -> Self {
        SimArena {
            jobs: Vec::new(),
            windows: Vec::new(),
            // Placeholder policy; `reset` installs the real one per run.
            queue: ReadyQueue::new(Algorithm::EarliestDeadlineFirst),
            slices: Vec::new(),
            records: Vec::new(),
            completions: HashMap::new(),
            ready: Vec::new(),
            remaining: Vec::new(),
            completed_at: Vec::new(),
            slice_jobs: Vec::new(),
            fault_marks: Vec::new(),
        }
    }
}

impl SimArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        SimArena::default()
    }
}

/// Per-channel tallies of the event engine, batched into `ftsched_obs`
/// once per run. All three are pure functions of the simulation inputs.
#[derive(Debug, Default, Clone, Copy)]
struct ChannelStats {
    /// Useful windows actually visited (idle-jumped windows don't count).
    windows_walked: u64,
    /// Events processed: windows entered, jobs admitted, dispatches,
    /// completions.
    events: u64,
    /// Idle spans skipped by jumping ≥ 2 windows ahead at once.
    idle_jumps: u64,
}

/// Simulates the partitioned, slot-gated system.
///
/// * `tasks` — the whole application task set;
/// * `partition` — the per-mode channel assignment;
/// * `algorithm` — the local dispatching policy on every channel;
/// * `slots` — the slot schedule (period, quanta, overheads);
/// * `config` — horizon, fault schedule, trace recording.
///
/// Allocates a fresh [`SimArena`] per call; hot loops should hold one
/// arena and call [`simulate_in`] instead.
///
/// # Errors
///
/// Returns a [`SimError`] for a non-positive horizon or an invalid
/// partition.
pub fn simulate(
    tasks: &TaskSet,
    partition: &SystemPartition,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    config: &SimulationConfig,
) -> Result<SimulationReport, SimError> {
    let mut arena = SimArena::default();
    simulate_in(tasks, partition, algorithm, slots, config, &mut arena)
}

/// [`simulate`] with caller-owned scratch storage: buffers in `arena` are
/// cleared and reused instead of reallocated, which is the dominant
/// saving for short campaign trials. The report is bit-identical to
/// [`simulate`]'s.
///
/// # Errors
///
/// Returns a [`SimError`] for a non-positive horizon or an invalid
/// partition.
pub fn simulate_in(
    tasks: &TaskSet,
    partition: &SystemPartition,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    config: &SimulationConfig,
    arena: &mut SimArena,
) -> Result<SimulationReport, SimError> {
    if !(config.horizon > 0.0 && config.horizon.is_finite()) {
        return Err(SimError::InvalidHorizon);
    }
    partition.validate(tasks)?;
    // Arena warmth before any buffer is touched: a reused arena keeps its
    // capacities from the previous run, a fresh one has none.
    let arena_warm = arena.jobs.capacity() + arena.windows.capacity() + arena.slices.capacity() > 0;
    let mut windows_walked = 0u64;
    let mut slices_scheduled = 0u64;
    let mut events_processed = 0u64;
    let mut idle_jumps = 0u64;
    let mut fault_ticks = 0u64;
    let horizon = Duration::from_units(config.horizon);
    let horizon_time = Time::ZERO + horizon;

    let mut trace = Trace::default();
    let mut outcomes: PerMode<OutcomeCounts> = PerMode::splat(OutcomeCounts::default());
    let mut worst_response: HashMap<ftsched_task::TaskId, f64> = HashMap::new();
    // BTreeMap: per-task response-time lists iterate in task-id order, so
    // everything derived from them downstream is deterministic.
    let mut response_times: Option<std::collections::BTreeMap<ftsched_task::TaskId, Vec<f64>>> =
        config.record_response_times.then(Default::default);
    let mut executed_time = PerMode::splat(0.0);
    let mut released_jobs = 0u64;
    let mut completed_jobs = 0u64;
    let mut deadline_misses = 0u64;
    let mut effective_faults: std::collections::HashSet<u64> = std::collections::HashSet::new();

    for mode in Mode::ALL {
        let channel_sets = partition.mode(mode).channel_task_sets(tasks)?;
        let layout = ChannelLayout::canonical(mode);
        for (channel, channel_set) in channel_sets.iter().enumerate() {
            let stats =
                simulate_channel(channel_set, mode, channel, algorithm, slots, horizon, arena);
            windows_walked += stats.windows_walked;
            events_processed += stats.events;
            idle_jumps += stats.idle_jumps;
            slices_scheduled += arena.slices.len() as u64;
            released_jobs += arena.records.len() as u64;

            // Slice-major fault classification. The record-major form —
            // "for each job, scan its slices in time order; at each slice
            // take the schedule's first overlapping fault; mark the job
            // and stop at the first right-channel hit" — is reproduced
            // exactly by one pass over all slices (each job's slices
            // appear in the same relative order) with a monotone cursor
            // over the sorted, disjoint fault windows. Jobs already
            // marked skip further checks, matching the record-major
            // break; a wrong-channel overlap leaves the job unmarked so
            // its later slices are still examined, as before.
            let faults = config.fault_schedule.faults();
            arena.fault_marks.clear();
            arena.fault_marks.resize(arena.records.len(), false);
            if !faults.is_empty() {
                let mut cursor = 0usize;
                for (slice, &ji) in arena.slices.iter().zip(&arena.slice_jobs) {
                    while cursor < faults.len() && faults[cursor].end() <= slice.start {
                        cursor += 1;
                    }
                    let Some(fault) = faults.get(cursor) else {
                        break;
                    };
                    if arena.fault_marks[ji as usize] {
                        continue;
                    }
                    if fault.overlaps(slice.start, slice.end) {
                        // Tick granularity exists only here: the overlap
                        // span the classifier examines inside the fault
                        // window.
                        fault_ticks +=
                            fault.end().min(slice.end).ticks() - fault.at.max(slice.start).ticks();
                        if layout.channel_of_core(fault.core) == Some(channel) {
                            arena.fault_marks[ji as usize] = true;
                            effective_faults.insert(fault.at.ticks());
                        }
                    }
                }
            }

            for (record, &overlapped) in arena.records.iter().zip(&arena.fault_marks) {
                let outcome = classify_outcome(mode, overlapped);
                outcomes[mode].record(outcome);

                let mut record = *record;
                record.outcome = outcome;
                if let Some(completion) = record.completion {
                    completed_jobs += 1;
                    let rt = completion.saturating_since(record.release).as_units();
                    let entry = worst_response.entry(record.job.task).or_insert(0.0);
                    if rt > *entry {
                        *entry = rt;
                    }
                    if let Some(map) = response_times.as_mut() {
                        map.entry(record.job.task).or_default().push(rt);
                    }
                }
                let missed = match record.completion {
                    Some(completion) => completion > record.deadline,
                    None => record.deadline < horizon_time,
                };
                record.deadline_met = !missed;
                if missed {
                    deadline_misses += 1;
                }
                if config.record_trace {
                    trace.jobs.push(record);
                }
            }
            executed_time[mode] += arena
                .slices
                .iter()
                .map(|s| s.length().as_units())
                .sum::<f64>();
            if config.record_trace {
                trace.slices.extend_from_slice(&arena.slices);
            }
        }
    }

    // One batched update per run: the deterministic counts are pure
    // functions of the inputs (arena warmth provably does not affect
    // them — see `arena_reuse_is_bit_identical_to_fresh_allocation`),
    // while the arena tallies are scheduling-dependent and live in the
    // timing half.
    let m = ftsched_obs::metrics();
    m.sim_runs.incr();
    m.sim_windows.add(windows_walked);
    m.sim_slices.add(slices_scheduled);
    m.sim_jobs_released.add(released_jobs);
    m.sim_jobs_completed.add(completed_jobs);
    m.sim_faults_injected
        .add(config.fault_schedule.len() as u64);
    m.sim_events.add(events_processed);
    m.sim_idle_spans_jumped.add(idle_jumps);
    m.sim_ticks_materialised.add(fault_ticks);
    if arena_warm {
        m.arena_reused.incr();
    } else {
        m.arena_fresh.incr();
    }

    Ok(SimulationReport {
        horizon: config.horizon,
        released_jobs,
        completed_jobs,
        deadline_misses,
        outcomes,
        worst_response_times: worst_response,
        response_times,
        executed_time,
        effective_faults: effective_faults.len() as u64,
        trace: if config.record_trace {
            Some(trace)
        } else {
            None
        },
    })
}

/// Simulates one channel of one mode over the horizon, leaving the
/// execution slices and job records in `arena.slices` / `arena.records`
/// (with `arena.slice_jobs` carrying the job index behind each slice).
///
/// Useful windows are derived on the fly from the cycle index: window `k`
/// of a mode is `[kP + offset, kP + offset + Q̃)` clamped to the horizon,
/// exactly the intervals [`SlotSchedule::useful_windows_into`] would
/// materialise (`u64` tick arithmetic, so `k·P` equals the reference
/// engine's iterated `cycle_start += P` bit for bit). Whenever the ready
/// queue is empty and the next release lies beyond the current window,
/// the cycle index jumps straight to the first window whose useful part
/// can run that release.
#[allow(clippy::too_many_arguments)]
fn simulate_channel(
    channel_tasks: &TaskSet,
    mode: Mode,
    channel: usize,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    horizon: Duration,
    arena: &mut SimArena,
) -> ChannelStats {
    // Order tasks by the dispatching policy's priority (only meaningful for
    // FP; EDF ignores the index).
    let ordered: Vec<Task> = match algorithm.priority_order() {
        Some(order) => channel_tasks.sorted_by_priority(order),
        None => channel_tasks.tasks().to_vec(),
    };
    let SimArena {
        jobs,
        slices,
        records,
        ready,
        remaining,
        completed_at,
        slice_jobs,
        ..
    } = arena;
    release_jobs_into(&ordered, horizon, jobs);
    slices.clear();
    records.clear();
    slice_jobs.clear();
    ready.clear();
    remaining.clear();
    remaining.extend(jobs.iter().map(|j| j.wcet));
    completed_at.clear();
    completed_at.resize(jobs.len(), None);

    let all_jobs: &[Job] = jobs;
    let mut stats = ChannelStats::default();

    // Pick the ready job the dispatching policy would run next. The keys
    // are exactly [`ReadyQueue`]'s and are unique per job (FP priorities
    // are release-array indices per task, and (task, activation) breaks
    // every remaining tie), so selection is order-insensitive.
    let pop_best = |ready: &mut Vec<u32>| -> Option<u32> {
        if ready.is_empty() {
            return None;
        }
        let best = match algorithm {
            Algorithm::RateMonotonic | Algorithm::DeadlineMonotonic => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    let j = &all_jobs[i as usize];
                    (j.priority, j.release, j.id.activation, j.id.task)
                })
                .map(|(pos, _)| pos),
            Algorithm::EarliestDeadlineFirst => ready
                .iter()
                .enumerate()
                .min_by_key(|(_, &i)| {
                    let j = &all_jobs[i as usize];
                    (j.deadline, j.id.task, j.id.activation)
                })
                .map(|(pos, _)| pos),
        };
        best.map(|pos| ready.swap_remove(pos))
    };

    let p = slots.period().ticks();
    let o = slots.slot_offset(mode).ticks();
    let q = slots.useful_quantum(mode).ticks();
    let h = (Time::ZERO + horizon).ticks();

    if q == 0 || p == 0 {
        // No useful windows (a zero quantum, or a period that rounds to
        // zero ticks and therefore admits no positive quantum): nothing
        // runs, every record stays incomplete.
        push_records(all_jobs, completed_at, mode, channel, records);
        return stats;
    }

    let mut next_release = 0usize;
    let mut k: u64 = 0;
    'windows: loop {
        let w_start = match k.checked_mul(p).and_then(|v| v.checked_add(o)) {
            Some(v) if v < h => v,
            _ => break,
        };
        let w_end = w_start.saturating_add(q).min(h);
        let window_end = Time::from_ticks(w_end);
        let mut now = Time::from_ticks(w_start);
        stats.windows_walked += 1;
        stats.events += 1;
        loop {
            // Admit everything released up to `now`.
            while next_release < all_jobs.len() && all_jobs[next_release].release <= now {
                ready.push(next_release as u32);
                next_release += 1;
                stats.events += 1;
            }
            if now >= window_end {
                break;
            }
            let Some(ji) = pop_best(ready) else {
                // Idle: hop to the next release inside this window, or
                // jump the whole idle span to the first window that can
                // run the next release.
                match all_jobs.get(next_release) {
                    Some(next) if next.release < window_end => {
                        now = next.release.max(now);
                        continue;
                    }
                    Some(next) => {
                        // `release ≥ window_end` and the horizon clamp
                        // only bites on the last window (releases are
                        // strictly inside the horizon), so here
                        // `release ≥ kP + offset + Q̃`: the first cycle
                        // whose useful part ends after the release is
                        // `(release − offset − Q̃) / P + 1`.
                        let r = next.release.ticks();
                        let jump = if r < o + q { 0 } else { (r - o - q) / p + 1 };
                        debug_assert!(jump > k);
                        if jump > k + 1 {
                            stats.idle_jumps += 1;
                        }
                        k = jump.max(k + 1);
                        continue 'windows;
                    }
                    // No pending work and no future releases: done.
                    None => break 'windows,
                }
            };
            let ji = ji as usize;
            let job = &all_jobs[ji];
            // Run until the job completes, the window closes, or a new
            // release may pre-empt it.
            let mut run_until = (now + remaining[ji]).min(window_end);
            if let Some(next) = all_jobs.get(next_release) {
                if next.release > now && next.release < run_until {
                    run_until = next.release;
                }
            }
            remaining[ji] -= run_until - now;
            slices.push(ExecutionSlice {
                job: job.id,
                mode,
                channel,
                start: now,
                end: run_until,
            });
            slice_jobs.push(ji as u32);
            now = run_until;
            stats.events += 1;
            if remaining[ji].is_zero() {
                completed_at[ji] = Some(now);
                stats.events += 1;
            } else {
                ready.push(ji as u32);
            }
        }
        k += 1;
    }

    push_records(all_jobs, completed_at, mode, channel, records);
    stats
}

/// Emits one [`JobRecord`] per released job, completion taken from the
/// parallel `completed_at` vector; outcome and deadline fields are
/// finalised by [`simulate_in`].
fn push_records(
    all_jobs: &[Job],
    completed_at: &[Option<Time>],
    mode: Mode,
    channel: usize,
    records: &mut Vec<JobRecord>,
) {
    for (job, &completion) in all_jobs.iter().zip(completed_at) {
        records.push(JobRecord {
            job: job.id,
            mode,
            channel,
            release: job.release,
            deadline: job.deadline,
            completion,
            deadline_met: true, // finalised by the caller
            outcome: ftsched_platform::JobOutcome::CorrectNoFault, // finalised by the caller
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_platform::{Fault, FaultSchedule};
    use ftsched_task::examples::{paper_example, PAPER_TOTAL_OVERHEAD};
    use ftsched_task::{Mode, PerMode, TaskId};

    /// The Table 2(b) slot schedule.
    fn table2b_slots() -> SlotSchedule {
        SlotSchedule::new(
            2.966,
            PerMode {
                ft: 0.820,
                fs: 1.281,
                nf: 0.815,
            },
            PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0),
        )
        .unwrap()
    }

    fn fault_at(at: f64, dur: f64, core: usize) -> Fault {
        Fault {
            at: Time::from_units(at),
            duration: Duration::from_units(dur),
            core: ftsched_platform::cpu::CoreId(core),
            mask: 0xF0F0,
        }
    }

    #[test]
    fn paper_design_runs_without_deadline_misses_under_edf() {
        let (tasks, partition) = paper_example();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig::fault_free(240.0),
        )
        .unwrap();
        assert!(report.released_jobs > 50);
        assert!(
            report.all_deadlines_met(),
            "misses: {}",
            report.deadline_misses
        );
        assert!(report.integrity_preserved());
        let trace = report.trace.as_ref().unwrap();
        assert!(trace.slices_are_disjoint_per_channel());
    }

    #[test]
    fn paper_design_runs_without_deadline_misses_under_rm() {
        // The Table 2(b) quanta were derived for EDF; for RM we derive the
        // minimum quanta from the analysis layer at a period well inside
        // the RM region of Figure 4 (P = 1.8 < 2.381) and simulate those.
        let (tasks, partition) = paper_example();
        let period = 1.8;
        let channel_sets = partition.channel_task_sets(&tasks).unwrap();
        let quanta = PerMode::from_fn(|mode| {
            ftsched_analysis::min_quantum_multi(
                channel_sets.get(mode),
                Algorithm::RateMonotonic,
                period,
            )
            .unwrap()
            .quantum
        });
        let total = quanta.total() + PAPER_TOTAL_OVERHEAD;
        assert!(
            total <= period,
            "P={period} not RM-feasible (needs {total:.3})"
        );
        let slots =
            SlotSchedule::new(period, quanta, PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0)).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::RateMonotonic,
            &slots,
            &SimulationConfig::fault_free(240.0),
        )
        .unwrap();
        assert!(
            report.all_deadlines_met(),
            "misses: {}",
            report.deadline_misses
        );
    }

    #[test]
    fn undersized_quanta_produce_deadline_misses() {
        let (tasks, partition) = paper_example();
        // Starve the FT slot: 0.1 per period is far below minQ ≈ 0.82.
        let slots = SlotSchedule::new(
            2.966,
            PerMode {
                ft: 0.1,
                fs: 1.281,
                nf: 0.815,
            },
            PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0),
        )
        .unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &slots,
            &SimulationConfig::fault_free(240.0),
        )
        .unwrap();
        assert!(!report.all_deadlines_met());
        assert!(report.deadline_misses > 0);
    }

    #[test]
    fn response_times_are_bounded_by_deadlines_in_a_valid_design() {
        let (tasks, partition) = paper_example();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig::fault_free(120.0),
        )
        .unwrap();
        for task in tasks.iter() {
            if let Some(rt) = report.worst_response_time(task.id) {
                assert!(
                    rt.as_units() <= task.deadline + 1e-9,
                    "{}: response {:.3} > deadline {}",
                    task.id,
                    rt.as_units(),
                    task.deadline
                );
            }
        }
    }

    #[test]
    fn executed_time_matches_task_demand() {
        let (tasks, partition) = paper_example();
        let horizon = 240.0;
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig::fault_free(horizon),
        )
        .unwrap();
        // All jobs complete, so the executed time per mode approaches the
        // mode utilisation × horizon (edge effects at the horizon aside).
        for mode in Mode::ALL {
            let demand = tasks.mode_utilization(mode) * horizon;
            let executed = report.executed_time[mode];
            assert!(
                (executed - demand).abs() < demand * 0.1 + 5.0,
                "{mode}: executed {executed:.1}, demand {demand:.1}"
            );
        }
    }

    #[test]
    fn fault_on_ft_slot_is_masked() {
        let (tasks, partition) = paper_example();
        // The FT useful window of the first cycle is [0, 0.820); a fault on
        // core 2 during it overlaps whatever FT job is running then.
        let schedule = FaultSchedule::new(vec![fault_at(0.1, 0.3, 2)]).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 60.0,
                fault_schedule: schedule,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        assert!(report.outcomes[Mode::FaultTolerant].correct_masked >= 1);
        assert_eq!(report.outcomes[Mode::FaultTolerant].wrong_result, 0);
        assert!(report.integrity_preserved());
        assert!(report.all_deadlines_met());
        assert!(report.effective_faults >= 1);
    }

    #[test]
    fn fault_on_fs_slot_silences_but_never_corrupts() {
        let (tasks, partition) = paper_example();
        // The FS useful window of the first cycle is roughly
        // [0.837, 2.118); core 1 belongs to FS channel 0.
        let schedule = FaultSchedule::new(vec![fault_at(1.0, 0.4, 1)]).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 60.0,
                fault_schedule: schedule,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        assert!(report.outcomes[Mode::FailSilent].silenced_lost >= 1);
        assert_eq!(report.outcomes[Mode::FailSilent].wrong_result, 0);
        assert!(report.integrity_preserved());
    }

    #[test]
    fn fault_on_nf_slot_can_corrupt_results() {
        let (tasks, partition) = paper_example();
        // The NF useful window of the first cycle is roughly
        // [2.135, 2.950); core 0 hosts NF channel 0 (task τ1).
        let schedule = FaultSchedule::new(vec![fault_at(2.3, 0.4, 0)]).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 60.0,
                fault_schedule: schedule,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        assert!(report.outcomes[Mode::NonFaultTolerant].wrong_result >= 1);
        assert!(!report.integrity_preserved());
        // Protected modes are untouched by an NF-slot fault.
        assert_eq!(report.outcomes[Mode::FaultTolerant].wrong_result, 0);
        assert_eq!(report.outcomes[Mode::FailSilent].wrong_result, 0);
    }

    #[test]
    fn fault_outside_any_execution_has_no_effect() {
        let (tasks, partition) = paper_example();
        // A fault inside the FT switch overhead (~[0.820, 0.837)) of the
        // first cycle hits no executing job — at that instant nothing runs.
        let schedule = FaultSchedule::new(vec![fault_at(0.825, 0.005, 3)]).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 30.0,
                fault_schedule: schedule,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        assert_eq!(report.total_outcomes().silenced_lost, 0);
        assert_eq!(report.total_outcomes().wrong_result, 0);
        assert_eq!(report.effective_faults, 0);
    }

    #[test]
    fn invalid_horizon_is_rejected() {
        let (tasks, partition) = paper_example();
        let err = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig::fault_free(0.0),
        )
        .unwrap_err();
        assert_eq!(err, SimError::InvalidHorizon);
    }

    #[test]
    fn trace_recording_can_be_disabled() {
        let (tasks, partition) = paper_example();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 30.0,
                fault_schedule: FaultSchedule::none(),
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        assert!(report.trace.is_none());
        assert!(report.released_jobs > 0);
    }

    #[test]
    fn arena_reuse_is_bit_identical_to_fresh_allocation() {
        let (tasks, partition) = paper_example();
        let slots = table2b_slots();
        let faults =
            FaultSchedule::new(vec![fault_at(0.1, 0.3, 2), fault_at(1.0, 0.4, 1)]).unwrap();
        let mut arena = SimArena::new();
        for record_trace in [true, false] {
            for horizon in [30.0, 120.0, 60.0] {
                let config = SimulationConfig {
                    horizon,
                    fault_schedule: faults.clone(),
                    record_trace,
                    record_response_times: false,
                };
                let fresh = simulate(
                    &tasks,
                    &partition,
                    Algorithm::EarliestDeadlineFirst,
                    &slots,
                    &config,
                )
                .unwrap();
                // The same arena reused across horizons and trace modes
                // (dirty from the previous run) must not change a bit.
                let reused = simulate_in(
                    &tasks,
                    &partition,
                    Algorithm::EarliestDeadlineFirst,
                    &slots,
                    &config,
                    &mut arena,
                )
                .unwrap();
                assert_eq!(fresh, reused, "horizon {horizon}, trace {record_trace}");
            }
        }
    }

    #[test]
    fn per_task_response_times_are_recorded() {
        let (tasks, partition) = paper_example();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig::fault_free(120.0),
        )
        .unwrap();
        // τ9 (C=1, T=4, FS) releases 30 jobs in 120 units; it must appear.
        assert!(report.worst_response_time(TaskId(9)).is_some());
        assert!(report.worst_response_time(TaskId(9)).unwrap().as_units() <= 4.0 + 1e-9);
    }

    #[test]
    fn event_engine_matches_slot_stepping_reference() {
        // The proptest battery in `tests/sim_equivalence.rs` covers
        // randomised workloads; this is the fast in-crate smoke over the
        // paper design with and without faults.
        let (tasks, partition) = paper_example();
        let slots = table2b_slots();
        let faults =
            FaultSchedule::new(vec![fault_at(0.1, 0.3, 2), fault_at(5.9, 0.4, 1)]).unwrap();
        for schedule in [FaultSchedule::none(), faults] {
            for record_trace in [true, false] {
                let config = SimulationConfig {
                    horizon: 120.0,
                    fault_schedule: schedule.clone(),
                    record_trace,
                    record_response_times: true,
                };
                let event = simulate(
                    &tasks,
                    &partition,
                    Algorithm::EarliestDeadlineFirst,
                    &slots,
                    &config,
                )
                .unwrap();
                let slot = crate::reference::simulate_slot_stepping(
                    &tasks,
                    &partition,
                    Algorithm::EarliestDeadlineFirst,
                    &slots,
                    &config,
                )
                .unwrap();
                assert_eq!(event, slot, "trace {record_trace}");
            }
        }
    }
}

//! Ready queues for the per-channel dispatchers.
//!
//! The engine keeps the set of released-but-unfinished jobs of one channel
//! in a [`ReadyQueue`] and asks it which job to run next:
//!
//! * under **fixed priorities** (RM/DM) the job of the highest-priority
//!   task wins, ties broken by earliest release then activation index;
//! * under **EDF** the job with the earliest absolute deadline wins, ties
//!   broken by task id so the schedule is deterministic.

use ftsched_analysis::Algorithm;

use crate::job::Job;

/// The set of pending jobs of one channel, ordered by the dispatching
/// policy.
#[derive(Debug, Clone)]
pub struct ReadyQueue {
    algorithm: Algorithm,
    jobs: Vec<Job>,
}

impl ReadyQueue {
    /// Creates an empty queue for the given dispatching policy.
    pub fn new(algorithm: Algorithm) -> Self {
        ReadyQueue {
            algorithm,
            jobs: Vec::new(),
        }
    }

    /// Empties the queue and switches it to a (possibly different)
    /// dispatching policy, keeping the allocated capacity — the arena
    /// reuse hook between simulation runs.
    pub fn reset(&mut self, algorithm: Algorithm) {
        self.algorithm = algorithm;
        self.jobs.clear();
    }

    /// Adds a released job.
    pub fn push(&mut self, job: Job) {
        self.jobs.push(job);
    }

    /// Number of pending jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if no job is pending.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Index of the job that should run next, if any.
    fn best_index(&self) -> Option<usize> {
        if self.jobs.is_empty() {
            return None;
        }
        let best = match self.algorithm {
            Algorithm::RateMonotonic | Algorithm::DeadlineMonotonic => self
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.priority, j.release, j.id.activation, j.id.task)),
            Algorithm::EarliestDeadlineFirst => self
                .jobs
                .iter()
                .enumerate()
                .min_by_key(|(_, j)| (j.deadline, j.id.task, j.id.activation)),
        };
        best.map(|(i, _)| i)
    }

    /// A reference to the job that would run next, without removing it.
    pub fn peek(&self) -> Option<&Job> {
        self.best_index().map(|i| &self.jobs[i])
    }

    /// Removes and returns the job that should run next.
    pub fn pop(&mut self) -> Option<Job> {
        self.best_index().map(|i| self.jobs.swap_remove(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Job;
    use ftsched_task::{Mode, Task};

    fn job(task_id: u32, c: f64, t: f64, activation: u64, priority: usize) -> Job {
        let task = Task::implicit_deadline(task_id, c, t, Mode::NonFaultTolerant).unwrap();
        Job::nth_of(&task, activation, priority)
    }

    #[test]
    fn fixed_priority_queue_orders_by_priority() {
        let mut q = ReadyQueue::new(Algorithm::RateMonotonic);
        q.push(job(3, 1.0, 12.0, 0, 2));
        q.push(job(1, 1.0, 4.0, 0, 0));
        q.push(job(2, 1.0, 8.0, 0, 1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().id.task.0, 1);
        assert_eq!(q.pop().unwrap().id.task.0, 2);
        assert_eq!(q.pop().unwrap().id.task.0, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn edf_queue_orders_by_absolute_deadline() {
        let mut q = ReadyQueue::new(Algorithm::EarliestDeadlineFirst);
        // Task 1 activation 1 has deadline 8; task 2 activation 0 has deadline 6.
        q.push(job(1, 1.0, 4.0, 1, 0));
        q.push(job(2, 1.0, 6.0, 0, 1));
        assert_eq!(q.peek().unwrap().id.task.0, 2);
        assert_eq!(q.pop().unwrap().id.task.0, 2);
        assert_eq!(q.pop().unwrap().id.task.0, 1);
    }

    #[test]
    fn edf_ties_break_deterministically_by_task_id() {
        let mut q = ReadyQueue::new(Algorithm::EarliestDeadlineFirst);
        q.push(job(5, 1.0, 10.0, 0, 0));
        q.push(job(2, 1.0, 10.0, 0, 1));
        assert_eq!(q.pop().unwrap().id.task.0, 2);
    }

    #[test]
    fn fp_ties_break_by_release_then_activation() {
        let mut q = ReadyQueue::new(Algorithm::RateMonotonic);
        q.push(job(1, 1.0, 4.0, 1, 0)); // released at 4
        q.push(job(1, 1.0, 4.0, 0, 0)); // released at 0
        assert_eq!(q.pop().unwrap().id.activation, 0);
        assert_eq!(q.pop().unwrap().id.activation, 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = ReadyQueue::new(Algorithm::EarliestDeadlineFirst);
        assert!(q.is_empty());
        assert!(q.peek().is_none());
        assert!(q.pop().is_none());
    }
}

//! # ftsched-sim
//!
//! Discrete-event simulation of the paper's time-partitioned, partitioned-
//! scheduling scheme: the time line of Figure 2 (periodic FT/FS/NF slots
//! with switch-out overheads), partitioned FP/EDF dispatching inside each
//! slot, deadline monitoring, and job-level fault semantics driven by the
//! platform model of `ftsched-platform`.
//!
//! The simulator serves two purposes in the reproduction:
//!
//! 1. **Validation of the analysis** — any design produced by
//!    `ftsched-design` (a feasible period and per-mode quanta) must run
//!    without a single deadline miss in the worst-case synchronous-release
//!    scenario. The integration tests exercise exactly that.
//! 2. **Fault-injection experiments** — with a
//!    [`ftsched_platform::FaultSchedule`] attached, every job is classified
//!    as correct, masked, silenced or corrupted according to the mode of
//!    its channel, regenerating the Ext-B experiment of `DESIGN.md`.
//!
//! Modules:
//!
//! * [`slot`] — the [`slot::SlotSchedule`]: which mode (and which phase,
//!   useful or overhead) owns any instant of simulated time.
//! * [`job`] — job instances with release, deadline and remaining work.
//! * [`queue`] — RM/DM/EDF ready queues.
//! * [`engine`] — the per-channel event-driven simulation engine.
//! * [`trace`] — execution slices and per-job records.
//! * [`report`] — aggregated metrics ([`report::SimulationReport`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod job;
pub mod queue;
pub mod reference;
pub mod report;
pub mod slot;
pub mod stats;
pub mod trace;

pub use engine::{simulate, simulate_in, SimArena, SimulationConfig};
pub use error::SimError;
pub use report::SimulationReport;
pub use slot::{SlotPhase, SlotSchedule};
pub use stats::{per_task_stats, render_stats_table, TaskStats};

//! The slot-stepping reference engine: the original simulator kept as an
//! executable specification.
//!
//! The production engine in [`crate::engine`] advances time event-to-event
//! (releases, window edges, completions) and classifies faults with a
//! single slice-major pass. This module preserves the earlier
//! implementation — materialise every useful window up front, walk them
//! one by one, classify faults record-major with a linear schedule scan —
//! so equivalence can be *tested* instead of argued: the proptest battery
//! in `tests/sim_equivalence.rs` and the `ftsched bench --sim` bitwise
//! gate both assert that [`simulate_slot_stepping`] and
//! [`crate::simulate`] return bit-identical [`SimulationReport`]s.
//!
//! Test/bench-only: nothing in the production pipeline calls this engine,
//! and it reports **no** `ftsched_obs` metrics (so benchmark entries that
//! time it don't pollute the `sim_*` counters of the engine under test).

use std::collections::HashMap;

use ftsched_analysis::Algorithm;
use ftsched_platform::{classify_outcome, ChannelLayout};
use ftsched_task::{Duration, Mode, PerMode, Task, TaskSet, Time};

use crate::engine::{SimArena, SimulationConfig};
use crate::error::SimError;
use crate::job::{release_jobs_into, Job};
use crate::report::{OutcomeCounts, SimulationReport};
use crate::slot::SlotSchedule;
use crate::trace::{ExecutionSlice, JobRecord, Trace};

/// [`crate::simulate`] via the slot-stepping reference engine: allocates a
/// fresh [`SimArena`] per call.
///
/// # Errors
///
/// Returns a [`SimError`] for a non-positive horizon or an invalid
/// partition.
pub fn simulate_slot_stepping(
    tasks: &TaskSet,
    partition: &ftsched_task::SystemPartition,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    config: &SimulationConfig,
) -> Result<SimulationReport, SimError> {
    let mut arena = SimArena::default();
    simulate_slot_stepping_in(tasks, partition, algorithm, slots, config, &mut arena)
}

/// [`simulate_slot_stepping`] with caller-owned scratch storage, mirroring
/// [`crate::simulate_in`].
///
/// # Errors
///
/// Returns a [`SimError`] for a non-positive horizon or an invalid
/// partition.
pub fn simulate_slot_stepping_in(
    tasks: &TaskSet,
    partition: &ftsched_task::SystemPartition,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    config: &SimulationConfig,
    arena: &mut SimArena,
) -> Result<SimulationReport, SimError> {
    if !(config.horizon > 0.0 && config.horizon.is_finite()) {
        return Err(SimError::InvalidHorizon);
    }
    partition.validate(tasks)?;
    let horizon = Duration::from_units(config.horizon);
    let horizon_time = Time::ZERO + horizon;

    let mut trace = Trace::default();
    let mut outcomes: PerMode<OutcomeCounts> = PerMode::splat(OutcomeCounts::default());
    let mut worst_response: HashMap<ftsched_task::TaskId, f64> = HashMap::new();
    // BTreeMap: per-task response-time lists iterate in task-id order, so
    // everything derived from them downstream is deterministic.
    let mut response_times: Option<std::collections::BTreeMap<ftsched_task::TaskId, Vec<f64>>> =
        config.record_response_times.then(Default::default);
    let mut executed_time = PerMode::splat(0.0);
    let mut released_jobs = 0u64;
    let mut completed_jobs = 0u64;
    let mut deadline_misses = 0u64;
    let mut effective_faults: std::collections::HashSet<u64> = std::collections::HashSet::new();

    for mode in Mode::ALL {
        let channel_sets = partition.mode(mode).channel_task_sets(tasks)?;
        let layout = ChannelLayout::canonical(mode);
        for (channel, channel_set) in channel_sets.iter().enumerate() {
            simulate_channel(channel_set, mode, channel, algorithm, slots, horizon, arena);
            released_jobs += arena.records.len() as u64;
            for record in &arena.records {
                // Classify the job against the fault schedule: a fault is
                // effective for this job if its window overlaps one of the
                // job's execution slices and it struck a core of this
                // channel.
                let mut overlapped = false;
                for slice in arena.slices.iter().filter(|s| s.job == record.job) {
                    if let Some(fault) = config.fault_schedule.overlapping(slice.start, slice.end) {
                        if layout.channel_of_core(fault.core) == Some(channel) {
                            overlapped = true;
                            effective_faults.insert(fault.at.ticks());
                            break;
                        }
                    }
                }
                let outcome = classify_outcome(mode, overlapped);
                outcomes[mode].record(outcome);

                let mut record = *record;
                record.outcome = outcome;
                if let Some(completion) = record.completion {
                    completed_jobs += 1;
                    let rt = completion.saturating_since(record.release).as_units();
                    let entry = worst_response.entry(record.job.task).or_insert(0.0);
                    if rt > *entry {
                        *entry = rt;
                    }
                    if let Some(map) = response_times.as_mut() {
                        map.entry(record.job.task).or_default().push(rt);
                    }
                }
                let missed = match record.completion {
                    Some(completion) => completion > record.deadline,
                    None => record.deadline < horizon_time,
                };
                record.deadline_met = !missed;
                if missed {
                    deadline_misses += 1;
                }
                if config.record_trace {
                    trace.jobs.push(record);
                }
            }
            executed_time[mode] += arena
                .slices
                .iter()
                .map(|s| s.length().as_units())
                .sum::<f64>();
            if config.record_trace {
                trace.slices.extend_from_slice(&arena.slices);
            }
        }
    }

    Ok(SimulationReport {
        horizon: config.horizon,
        released_jobs,
        completed_jobs,
        deadline_misses,
        outcomes,
        worst_response_times: worst_response,
        response_times,
        executed_time,
        effective_faults: effective_faults.len() as u64,
        trace: if config.record_trace {
            Some(trace)
        } else {
            None
        },
    })
}

/// Simulates one channel by materialising every useful window of the mode
/// and walking them in order — the original slot-stepping dispatcher.
#[allow(clippy::too_many_arguments)]
fn simulate_channel(
    channel_tasks: &TaskSet,
    mode: Mode,
    channel: usize,
    algorithm: Algorithm,
    slots: &SlotSchedule,
    horizon: Duration,
    arena: &mut SimArena,
) {
    // Order tasks by the dispatching policy's priority (only meaningful for
    // FP; EDF ignores the index).
    let ordered: Vec<Task> = match algorithm.priority_order() {
        Some(order) => channel_tasks.sorted_by_priority(order),
        None => channel_tasks.tasks().to_vec(),
    };
    let SimArena {
        jobs,
        windows,
        queue,
        slices,
        records,
        completions,
        ..
    } = arena;
    release_jobs_into(&ordered, horizon, jobs);
    completions.clear();
    slices.clear();
    records.clear();
    queue.reset(algorithm);
    slots.useful_windows_into(mode, horizon, windows);

    let all_jobs: &[Job] = jobs;
    let mut next_release_idx = 0usize;

    for window in windows.iter() {
        let mut now = window.start;
        loop {
            // Admit everything released up to `now`.
            while next_release_idx < all_jobs.len() && all_jobs[next_release_idx].release <= now {
                queue.push(all_jobs[next_release_idx].clone());
                next_release_idx += 1;
            }
            if now >= window.end {
                break;
            }
            let Some(mut job) = queue.pop() else {
                // Idle until the next release or the end of the window.
                match all_jobs.get(next_release_idx) {
                    Some(next) if next.release < window.end => {
                        now = next.release.max(now);
                        continue;
                    }
                    _ => break,
                }
            };
            // Run until the job completes, the window closes, or a new
            // release may pre-empt it.
            let mut run_until = (now + job.remaining).min(window.end);
            if let Some(next) = all_jobs.get(next_release_idx) {
                if next.release > now && next.release < run_until {
                    run_until = next.release;
                }
            }
            let executed = job.execute(run_until - now);
            debug_assert_eq!(executed, run_until - now);
            slices.push(ExecutionSlice {
                job: job.id,
                mode,
                channel,
                start: now,
                end: run_until,
            });
            now = run_until;
            if job.is_complete() {
                completions.insert(job.id, now);
            } else {
                queue.push(job);
            }
        }
    }

    for job in all_jobs {
        records.push(JobRecord {
            job: job.id,
            mode,
            channel,
            release: job.release,
            deadline: job.deadline,
            completion: completions.get(&job.id).copied(),
            deadline_met: true, // finalised by the caller
            outcome: ftsched_platform::JobOutcome::CorrectNoFault, // finalised by the caller
        });
    }
}

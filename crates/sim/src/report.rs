//! Aggregated results of a simulation run.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use ftsched_platform::JobOutcome;
use ftsched_task::{Duration, Mode, PerMode, TaskId, TaskSet};

use crate::trace::Trace;

/// Counters of job outcomes with respect to faults.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Jobs untouched by any fault.
    pub correct_no_fault: u64,
    /// Jobs whose fault was masked by the FT channel.
    pub correct_masked: u64,
    /// Jobs silenced by the FS comparator (result lost, nothing wrong
    /// propagated).
    pub silenced_lost: u64,
    /// Jobs that may have committed a wrong result (NF mode under fault).
    pub wrong_result: u64,
}

impl OutcomeCounts {
    /// Adds one outcome to the counters.
    pub fn record(&mut self, outcome: JobOutcome) {
        match outcome {
            JobOutcome::CorrectNoFault => self.correct_no_fault += 1,
            JobOutcome::CorrectMasked => self.correct_masked += 1,
            JobOutcome::SilencedLost => self.silenced_lost += 1,
            JobOutcome::WrongResult => self.wrong_result += 1,
        }
    }

    /// Total number of classified jobs.
    pub fn total(&self) -> u64 {
        self.correct_no_fault + self.correct_masked + self.silenced_lost + self.wrong_result
    }

    /// Jobs whose correct result reached the memory.
    pub fn committed_correctly(&self) -> u64 {
        self.correct_no_fault + self.correct_masked
    }
}

/// The aggregated result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Length of the simulated interval, in paper time units.
    pub horizon: f64,
    /// Number of jobs released inside the horizon.
    pub released_jobs: u64,
    /// Number of jobs that completed inside the horizon.
    pub completed_jobs: u64,
    /// Number of jobs that missed their deadline.
    pub deadline_misses: u64,
    /// Per-mode outcome counters.
    pub outcomes: PerMode<OutcomeCounts>,
    /// Worst observed response time per task (completed jobs only), in
    /// paper time units.
    pub worst_response_times: HashMap<TaskId, f64>,
    /// Every completed job's response time, grouped per task in task-id
    /// order — only recorded when
    /// [`SimulationConfig::record_response_times`](crate::SimulationConfig)
    /// is set (campaign response-time histograms feed on this). Within a
    /// task, times appear in job-completion record order, which is
    /// deterministic.
    pub response_times: Option<BTreeMap<TaskId, Vec<f64>>>,
    /// Busy (executed) time per mode, in paper time units.
    pub executed_time: PerMode<f64>,
    /// Number of faults that overlapped at least one job.
    pub effective_faults: u64,
    /// The full trace, if recording was enabled.
    pub trace: Option<Trace>,
}

impl SimulationReport {
    /// True if every released job with a deadline inside the horizon met
    /// it.
    pub fn all_deadlines_met(&self) -> bool {
        self.deadline_misses == 0
    }

    /// True if no job may have committed a wrong result (memory integrity
    /// preserved from the application's point of view).
    pub fn integrity_preserved(&self) -> bool {
        Mode::ALL
            .iter()
            .all(|&m| self.outcomes[m].wrong_result == 0)
    }

    /// Total outcome counters over all modes.
    pub fn total_outcomes(&self) -> OutcomeCounts {
        let mut total = OutcomeCounts::default();
        for mode in Mode::ALL {
            let o = self.outcomes[mode];
            total.correct_no_fault += o.correct_no_fault;
            total.correct_masked += o.correct_masked;
            total.silenced_lost += o.silenced_lost;
            total.wrong_result += o.wrong_result;
        }
        total
    }

    /// Fraction of released jobs that completed inside the horizon.
    pub fn completion_ratio(&self) -> f64 {
        if self.released_jobs == 0 {
            1.0
        } else {
            self.completed_jobs as f64 / self.released_jobs as f64
        }
    }

    /// Worst observed response time of one task, if it completed any job.
    pub fn worst_response_time(&self, task: TaskId) -> Option<Duration> {
        self.worst_response_times
            .get(&task)
            .map(|&rt| Duration::from_units(rt))
    }

    /// Deadline-relative view of [`Self::response_times`]: every recorded
    /// response time divided by its task's relative deadline `D_i`, so
    /// `1.0` means "completed exactly at the deadline" whatever the
    /// task's period. This is the normalisation that makes latency
    /// distributions comparable — and poolable — across tasks and across
    /// workloads with different period ranges; the campaign engine's
    /// latency-vs-load curves feed on it.
    ///
    /// Returns `None` when response times were not recorded
    /// ([`SimulationConfig::record_response_times`](crate::SimulationConfig)
    /// off). Tasks unknown to `tasks` are skipped — they cannot appear in
    /// a report simulated from that set.
    pub fn normalized_response_times(&self, tasks: &TaskSet) -> Option<BTreeMap<TaskId, Vec<f64>>> {
        let recorded = self.response_times.as_ref()?;
        let mut out = BTreeMap::new();
        for (&task, times) in recorded {
            let Some(deadline) = tasks.get(task).map(|t| t.deadline) else {
                continue;
            };
            // Deadlines are validated positive by the task model, so the
            // division is always well-defined.
            out.insert(task, times.iter().map(|&rt| rt / deadline).collect());
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counters_accumulate() {
        let mut c = OutcomeCounts::default();
        c.record(JobOutcome::CorrectNoFault);
        c.record(JobOutcome::CorrectMasked);
        c.record(JobOutcome::CorrectMasked);
        c.record(JobOutcome::SilencedLost);
        c.record(JobOutcome::WrongResult);
        assert_eq!(c.total(), 5);
        assert_eq!(c.committed_correctly(), 3);
        assert_eq!(c.silenced_lost, 1);
        assert_eq!(c.wrong_result, 1);
    }

    #[test]
    fn report_predicates() {
        let mut outcomes = PerMode::splat(OutcomeCounts::default());
        outcomes[Mode::NonFaultTolerant].wrong_result = 2;
        let report = SimulationReport {
            horizon: 100.0,
            released_jobs: 10,
            completed_jobs: 9,
            deadline_misses: 0,
            outcomes,
            worst_response_times: HashMap::new(),
            response_times: None,
            executed_time: PerMode::splat(0.0),
            effective_faults: 2,
            trace: None,
        };
        assert!(report.all_deadlines_met());
        assert!(!report.integrity_preserved());
        assert_eq!(report.total_outcomes().wrong_result, 2);
        assert!((report.completion_ratio() - 0.9).abs() < 1e-12);
        assert!(report.worst_response_time(TaskId(1)).is_none());
    }

    #[test]
    fn response_times_normalize_by_relative_deadline() {
        use ftsched_task::{Mode, Task};

        let tasks = TaskSet::new(vec![
            Task::implicit_deadline(1, 1.0, 4.0, Mode::FaultTolerant).unwrap(),
            Task::implicit_deadline(2, 2.0, 10.0, Mode::NonFaultTolerant).unwrap(),
        ])
        .unwrap();
        let mut recorded = BTreeMap::new();
        recorded.insert(TaskId(1), vec![1.0, 4.0]);
        recorded.insert(TaskId(2), vec![5.0]);
        let report = SimulationReport {
            horizon: 20.0,
            released_jobs: 3,
            completed_jobs: 3,
            deadline_misses: 0,
            outcomes: PerMode::splat(OutcomeCounts::default()),
            worst_response_times: HashMap::new(),
            response_times: Some(recorded),
            executed_time: PerMode::splat(0.0),
            effective_faults: 0,
            trace: None,
        };
        let normalized = report.normalized_response_times(&tasks).unwrap();
        assert_eq!(normalized[&TaskId(1)], vec![0.25, 1.0]);
        assert_eq!(normalized[&TaskId(2)], vec![0.5]);

        // Unrecorded runs normalise to nothing at all.
        let bare = SimulationReport {
            response_times: None,
            ..report
        };
        assert!(bare.normalized_response_times(&tasks).is_none());
    }
}

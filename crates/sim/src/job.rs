//! Job instances: one activation of a sporadic task.

use serde::{Deserialize, Serialize};

use ftsched_task::{Duration, Task, TaskId, Time};

/// Identifier of a job: the task plus the activation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId {
    /// The task this job belongs to.
    pub task: TaskId,
    /// Zero-based activation index.
    pub activation: u64,
}

/// One activation of a task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Identifier (task, activation index).
    pub id: JobId,
    /// Release instant.
    pub release: Time,
    /// Absolute deadline.
    pub deadline: Time,
    /// Worst-case execution time of the job.
    pub wcet: Duration,
    /// Execution time still owed.
    pub remaining: Duration,
    /// Fixed priority of the owning task (smaller = higher priority); used
    /// only by the fixed-priority queues.
    pub priority: usize,
}

impl Job {
    /// Builds the `activation`-th job of a task under the worst-case
    /// (synchronous, strictly periodic) arrival pattern, with the given
    /// fixed priority.
    pub fn nth_of(task: &Task, activation: u64, priority: usize) -> Job {
        let release = Time::ZERO + task.period_ticks() * activation;
        Job {
            id: JobId {
                task: task.id,
                activation,
            },
            release,
            deadline: release + task.deadline_ticks(),
            wcet: task.wcet_ticks(),
            remaining: task.wcet_ticks(),
            priority,
        }
    }

    /// Whether the job has finished executing.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_zero()
    }

    /// Executes the job for `amount`, returning the time actually consumed
    /// (never more than the remaining work).
    pub fn execute(&mut self, amount: Duration) -> Duration {
        let consumed = amount.min(self.remaining);
        self.remaining -= consumed;
        consumed
    }
}

/// Generates all jobs of the tasks in `tasks` released strictly before
/// `horizon`, with priorities taken from the task's position in `tasks`
/// (index 0 = highest priority).
pub fn release_jobs(tasks: &[Task], horizon: Duration) -> Vec<Job> {
    let mut jobs = Vec::new();
    release_jobs_into(tasks, horizon, &mut jobs);
    jobs
}

/// [`release_jobs`] writing into a caller-owned buffer (cleared first):
/// the allocation-free form used by the simulator arena.
pub fn release_jobs_into(tasks: &[Task], horizon: Duration, jobs: &mut Vec<Job>) {
    jobs.clear();
    let horizon_time = Time::ZERO + horizon;
    for (priority, task) in tasks.iter().enumerate() {
        let mut activation = 0u64;
        loop {
            let job = Job::nth_of(task, activation, priority);
            if job.release >= horizon_time {
                break;
            }
            jobs.push(job);
            activation += 1;
        }
    }
    jobs.sort_by_key(|j| (j.release, j.id.task));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_task::Mode;

    fn task(id: u32, c: f64, t: f64) -> Task {
        Task::implicit_deadline(id, c, t, Mode::NonFaultTolerant).unwrap()
    }

    #[test]
    fn nth_job_has_periodic_release_and_deadline() {
        let t = task(1, 1.0, 4.0);
        let j0 = Job::nth_of(&t, 0, 0);
        let j3 = Job::nth_of(&t, 3, 0);
        assert_eq!(j0.release, Time::from_units(0.0));
        assert_eq!(j0.deadline, Time::from_units(4.0));
        assert_eq!(j3.release, Time::from_units(12.0));
        assert_eq!(j3.deadline, Time::from_units(16.0));
        assert_eq!(j3.id.activation, 3);
    }

    #[test]
    fn execute_consumes_remaining_work() {
        let t = task(1, 2.0, 4.0);
        let mut j = Job::nth_of(&t, 0, 0);
        assert!(!j.is_complete());
        let used = j.execute(Duration::from_units(1.5));
        assert_eq!(used.as_units(), 1.5);
        let used = j.execute(Duration::from_units(5.0));
        assert!((used.as_units() - 0.5).abs() < 1e-9);
        assert!(j.is_complete());
        assert_eq!(j.execute(Duration::from_units(1.0)), Duration::ZERO);
    }

    #[test]
    fn release_jobs_covers_the_horizon_exclusively() {
        let tasks = vec![task(1, 1.0, 4.0), task(2, 1.0, 6.0)];
        let jobs = release_jobs(&tasks, Duration::from_units(12.0));
        // Task 1 releases at 0, 4, 8; task 2 at 0, 6 → 5 jobs. Releases at
        // exactly the horizon are excluded.
        assert_eq!(jobs.len(), 5);
        assert!(jobs.iter().all(|j| j.release < Time::from_units(12.0)));
        // Sorted by release time.
        for pair in jobs.windows(2) {
            assert!(pair[0].release <= pair[1].release);
        }
    }

    #[test]
    fn priorities_follow_task_order() {
        let tasks = vec![task(1, 1.0, 4.0), task(2, 1.0, 6.0)];
        let jobs = release_jobs(&tasks, Duration::from_units(8.0));
        for job in &jobs {
            match job.id.task.0 {
                1 => assert_eq!(job.priority, 0),
                2 => assert_eq!(job.priority, 1),
                _ => unreachable!(),
            }
        }
    }
}

//! Seeded random workload generators.
//!
//! The paper evaluates a single hand-built task set (Table 1). To support
//! the extension experiments (acceptance-ratio campaigns, baseline
//! comparisons, ablations) this module provides the standard generators
//! used in the real-time scheduling literature:
//!
//! * **UUniFast** (Bini & Buttazzo) — unbiased sampling of `n` utilisations
//!   summing to a target `U`;
//! * **UUniFast-discard** — the same, discarding vectors with any
//!   per-task utilisation above a cap (needed when `U > 1` is split over
//!   multiple channels);
//! * log-uniform period generation over a configurable range, optionally
//!   snapped to a grid so hyperperiods stay small;
//! * mode assignment by configurable FT/FS/NF shares.
//!
//! All generation is driven by an explicit [`rand::Rng`] so experiments can
//! fix their seed and reproduce exactly.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::TaskModelError;
use crate::mode::Mode;
use crate::task::TaskBuilder;
use crate::taskset::TaskSet;

/// How periods are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeriodDistribution {
    /// Log-uniform between `min` and `max` (inclusive), the usual choice
    /// for synthetic real-time workloads.
    LogUniform {
        /// Smallest period.
        min: f64,
        /// Largest period.
        max: f64,
    },
    /// Uniform over an explicit menu of periods (keeps hyperperiods small;
    /// handy for simulation campaigns).
    Choice {
        /// The candidate periods.
        periods: [f64; 8],
    },
}

impl PeriodDistribution {
    /// A period menu of harmonic-ish values similar in magnitude to
    /// Table 1, keeping hyperperiods below 120 time units.
    pub fn table1_like() -> Self {
        PeriodDistribution::Choice {
            periods: [4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0, 30.0],
        }
    }

    fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            PeriodDistribution::LogUniform { min, max } => {
                let u = Uniform::new(min.ln(), max.ln()).sample(rng);
                u.exp()
            }
            PeriodDistribution::Choice { periods } => periods[rng.gen_range(0..periods.len())],
        }
    }
}

/// Share of tasks assigned to each operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModeMix {
    /// Fraction of tasks requiring FT mode.
    pub ft: f64,
    /// Fraction of tasks requiring FS mode.
    pub fs: f64,
    /// Fraction of tasks requiring NF mode.
    pub nf: f64,
}

impl ModeMix {
    /// The mix of the paper's example: 4 FT, 4 FS, 5 NF out of 13 tasks.
    pub fn paper_like() -> Self {
        ModeMix {
            ft: 4.0 / 13.0,
            fs: 4.0 / 13.0,
            nf: 5.0 / 13.0,
        }
    }

    /// Equal share for every mode.
    pub fn uniform() -> Self {
        ModeMix {
            ft: 1.0 / 3.0,
            fs: 1.0 / 3.0,
            nf: 1.0 / 3.0,
        }
    }

    /// Validates that the shares are non-negative and sum to ~1.
    pub fn validate(&self) -> Result<(), TaskModelError> {
        let sum = self.ft + self.fs + self.nf;
        if self.ft < 0.0 || self.fs < 0.0 || self.nf < 0.0 || (sum - 1.0).abs() > 1e-6 {
            return Err(TaskModelError::InvalidGeneratorConfig {
                reason: format!(
                    "mode mix must be non-negative and sum to 1 (got {:.3}+{:.3}+{:.3}={:.3})",
                    self.ft, self.fs, self.nf, sum
                ),
            });
        }
        Ok(())
    }

    fn sample(&self, rng: &mut impl Rng) -> Mode {
        let x: f64 = rng.gen();
        if x < self.ft {
            Mode::FaultTolerant
        } else if x < self.ft + self.fs {
            Mode::FailSilent
        } else {
            Mode::NonFaultTolerant
        }
    }
}

/// Configuration of the random task-set generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of tasks to generate.
    pub task_count: usize,
    /// Target total utilisation of the set.
    pub total_utilization: f64,
    /// Cap on any single task's utilisation (UUniFast-discard); use 1.0 to
    /// effectively disable the cap.
    pub max_task_utilization: f64,
    /// Period distribution.
    pub periods: PeriodDistribution,
    /// Mode shares.
    pub mode_mix: ModeMix,
    /// If `Some(g)`, periods are rounded to the nearest multiple of `g`
    /// (never below `g`). Keeps hyperperiods tractable.
    pub period_granularity: Option<f64>,
}

impl GeneratorConfig {
    /// A configuration producing sets similar in flavour to the paper's
    /// example.
    pub fn paper_like(task_count: usize, total_utilization: f64) -> Self {
        GeneratorConfig {
            task_count,
            total_utilization,
            max_task_utilization: 1.0,
            periods: PeriodDistribution::table1_like(),
            mode_mix: ModeMix::paper_like(),
            period_granularity: None,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), TaskModelError> {
        if self.task_count == 0 {
            return Err(TaskModelError::InvalidGeneratorConfig {
                reason: "task_count must be at least 1".into(),
            });
        }
        if self.total_utilization <= 0.0 || !self.total_utilization.is_finite() {
            return Err(TaskModelError::InvalidGeneratorConfig {
                reason: format!(
                    "total utilisation {} must be positive",
                    self.total_utilization
                ),
            });
        }
        if !(0.0 < self.max_task_utilization && self.max_task_utilization <= 1.0) {
            return Err(TaskModelError::InvalidGeneratorConfig {
                reason: format!(
                    "max task utilisation {} must be in (0, 1]",
                    self.max_task_utilization
                ),
            });
        }
        if self.total_utilization > self.max_task_utilization * self.task_count as f64 {
            return Err(TaskModelError::InvalidGeneratorConfig {
                reason: format!(
                    "total utilisation {} cannot be split over {} tasks capped at {}",
                    self.total_utilization, self.task_count, self.max_task_utilization
                ),
            });
        }
        self.mode_mix.validate()?;
        if let PeriodDistribution::LogUniform { min, max } = self.periods {
            if !(min > 0.0 && max >= min) {
                return Err(TaskModelError::InvalidGeneratorConfig {
                    reason: format!("period range [{min}, {max}] is invalid"),
                });
            }
        }
        Ok(())
    }
}

/// UUniFast: draws `n` utilisations that sum exactly to `total` with an
/// unbiased (uniform over the simplex) distribution.
///
/// Classic algorithm from Bini & Buttazzo, "Measuring the performance of
/// schedulability tests".
pub fn uunifast(rng: &mut impl Rng, n: usize, total: f64) -> Vec<f64> {
    assert!(n > 0, "uunifast needs at least one task");
    let mut utils = Vec::with_capacity(n);
    let mut sum_u = total;
    for i in 1..n {
        let exponent = 1.0 / (n - i) as f64;
        let next_sum: f64 = sum_u * rng.gen::<f64>().powf(exponent);
        utils.push(sum_u - next_sum);
        sum_u = next_sum;
    }
    utils.push(sum_u);
    utils
}

/// UUniFast-discard: repeats [`uunifast`] until every utilisation is at most
/// `cap`. Gives up after `max_attempts` and returns `None` (the caller can
/// relax the cap or reduce the target utilisation).
pub fn uunifast_discard(
    rng: &mut impl Rng,
    n: usize,
    total: f64,
    cap: f64,
    max_attempts: usize,
) -> Option<Vec<f64>> {
    for _ in 0..max_attempts {
        let utils = uunifast(rng, n, total);
        if utils.iter().all(|&u| u <= cap + 1e-12) {
            return Some(utils);
        }
    }
    None
}

/// Generates a random task set according to `config`.
///
/// # Errors
///
/// Returns a [`TaskModelError`] if the configuration is invalid or if the
/// UUniFast-discard cap could not be satisfied after many attempts.
pub fn generate_taskset(
    rng: &mut impl Rng,
    config: &GeneratorConfig,
) -> Result<TaskSet, TaskModelError> {
    config.validate()?;
    let utils = uunifast_discard(
        rng,
        config.task_count,
        config.total_utilization,
        config.max_task_utilization,
        10_000,
    )
    .ok_or_else(|| TaskModelError::InvalidGeneratorConfig {
        reason: format!(
            "could not split utilisation {} over {} tasks with per-task cap {}",
            config.total_utilization, config.task_count, config.max_task_utilization
        ),
    })?;

    let mut tasks = Vec::with_capacity(config.task_count);
    for (i, &u) in utils.iter().enumerate() {
        let mut period = config.periods.sample(rng);
        if let Some(g) = config.period_granularity {
            period = (period / g).round().max(1.0) * g;
        }
        // Guard against degenerate utilisations from the simplex sampling.
        let u = u.max(1e-6);
        let wcet = (u * period).max(1e-9);
        let mode = config.mode_mix.sample(rng);
        let task = TaskBuilder::new(i as u32 + 1)
            .wcet(wcet)
            .period(period)
            .mode(mode)
            .build()?;
        tasks.push(task);
    }
    TaskSet::new(tasks)
}

/// Generates a batch of `count` independent task sets with the same
/// configuration (convenience for campaign drivers).
pub fn generate_batch(
    rng: &mut impl Rng,
    config: &GeneratorConfig,
    count: usize,
) -> Result<Vec<TaskSet>, TaskModelError> {
    (0..count).map(|_| generate_taskset(rng, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn uunifast_sums_to_target() {
        let mut r = rng(1);
        for n in [1usize, 2, 5, 13, 50] {
            for total in [0.3, 1.0, 2.5] {
                let utils = uunifast(&mut r, n, total);
                assert_eq!(utils.len(), n);
                let sum: f64 = utils.iter().sum();
                assert!((sum - total).abs() < 1e-9, "n={n} total={total} sum={sum}");
                assert!(utils.iter().all(|&u| u >= -1e-12));
            }
        }
    }

    #[test]
    fn uunifast_single_task_gets_everything() {
        let mut r = rng(2);
        let utils = uunifast(&mut r, 1, 0.7);
        assert_eq!(utils, vec![0.7]);
    }

    #[test]
    fn uunifast_discard_respects_cap() {
        let mut r = rng(3);
        let utils = uunifast_discard(&mut r, 10, 2.0, 0.5, 10_000).unwrap();
        assert!(utils.iter().all(|&u| u <= 0.5 + 1e-9));
        let sum: f64 = utils.iter().sum();
        assert!((sum - 2.0).abs() < 1e-9);
    }

    #[test]
    fn uunifast_discard_gives_up_when_impossible() {
        let mut r = rng(4);
        // 2 tasks capped at 0.4 can never sum to 1.0.
        assert!(uunifast_discard(&mut r, 2, 1.0, 0.4, 100).is_none());
    }

    #[test]
    fn generated_set_matches_target_utilization() {
        let mut r = rng(5);
        let config = GeneratorConfig::paper_like(13, 1.5);
        let set = generate_taskset(&mut r, &config).unwrap();
        assert_eq!(set.len(), 13);
        assert!((set.utilization() - 1.5).abs() < 1e-6);
        assert!(set.all_implicit_deadlines());
    }

    #[test]
    fn generation_is_reproducible_with_same_seed() {
        let config = GeneratorConfig::paper_like(8, 1.0);
        let a = generate_taskset(&mut rng(42), &config).unwrap();
        let b = generate_taskset(&mut rng(42), &config).unwrap();
        assert_eq!(a, b);
        let c = generate_taskset(&mut rng(43), &config).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn period_granularity_snaps_periods() {
        let mut r = rng(6);
        let config = GeneratorConfig {
            task_count: 20,
            total_utilization: 1.0,
            max_task_utilization: 1.0,
            periods: PeriodDistribution::LogUniform {
                min: 3.0,
                max: 100.0,
            },
            mode_mix: ModeMix::uniform(),
            period_granularity: Some(5.0),
        };
        let set = generate_taskset(&mut r, &config).unwrap();
        for task in set.iter() {
            let ratio = task.period / 5.0;
            assert!(
                (ratio - ratio.round()).abs() < 1e-9,
                "period {}",
                task.period
            );
        }
    }

    #[test]
    fn log_uniform_periods_stay_in_range() {
        let mut r = rng(7);
        let dist = PeriodDistribution::LogUniform {
            min: 10.0,
            max: 100.0,
        };
        for _ in 0..1000 {
            let p = dist.sample(&mut r);
            assert!((10.0..=100.0).contains(&p));
        }
    }

    #[test]
    fn mode_mix_shares_are_respected_in_the_large() {
        let mut r = rng(8);
        let mix = ModeMix {
            ft: 0.5,
            fs: 0.25,
            nf: 0.25,
        };
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[mix.sample(&mut r).slot_index()] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.5).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut bad = GeneratorConfig::paper_like(0, 1.0);
        assert!(bad.validate().is_err());
        bad = GeneratorConfig::paper_like(5, -1.0);
        assert!(bad.validate().is_err());
        bad = GeneratorConfig::paper_like(5, 1.0);
        bad.max_task_utilization = 1.5;
        assert!(bad.validate().is_err());
        bad = GeneratorConfig::paper_like(2, 1.9);
        bad.max_task_utilization = 0.5;
        assert!(bad.validate().is_err());
        bad = GeneratorConfig::paper_like(5, 1.0);
        bad.mode_mix = ModeMix {
            ft: 0.9,
            fs: 0.9,
            nf: -0.8,
        };
        assert!(bad.validate().is_err());
        bad = GeneratorConfig::paper_like(5, 1.0);
        bad.periods = PeriodDistribution::LogUniform {
            min: -1.0,
            max: 5.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn batch_generation_produces_independent_sets() {
        let mut r = rng(9);
        let config = GeneratorConfig::paper_like(6, 0.9);
        let batch = generate_batch(&mut r, &config, 10).unwrap();
        assert_eq!(batch.len(), 10);
        // Extremely unlikely that two independently drawn sets are equal.
        assert_ne!(batch[0], batch[1]);
    }
}

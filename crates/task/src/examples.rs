//! The concrete example of the paper's §4: the 13-task application of
//! Table 1 and its manual partition.
//!
//! | Mode | i  | C_i | T_i |
//! |------|----|-----|-----|
//! | NF   | 1  | 1   | 6   |
//! | NF   | 2  | 1   | 8   |
//! | NF   | 3  | 1   | 12  |
//! | NF   | 4  | 2   | 10  |
//! | NF   | 5  | 6   | 24  |
//! | FS   | 6  | 1   | 10  |
//! | FS   | 7  | 1   | 15  |
//! | FS   | 8  | 2   | 20  |
//! | FS   | 9  | 1   | 4   |
//! | FT   | 10 | 1   | 12  |
//! | FT   | 11 | 1   | 15  |
//! | FT   | 12 | 1   | 20  |
//! | FT   | 13 | 2   | 30  |
//!
//! Deadlines equal periods. The manual partition of §4 is
//! `T_NF^1 = {τ1}`, `T_NF^2 = {τ2, τ3}`, `T_NF^3 = {τ4}`, `T_NF^4 = {τ5}`,
//! `T_FS^1 = {τ6, τ7, τ8}`, `T_FS^2 = {τ9}`, and all FT tasks on the single
//! FT channel.

use crate::mode::Mode;
use crate::partition::{ModePartition, SystemPartition};
use crate::task::{Task, TaskId};
use crate::taskset::TaskSet;

/// Raw `(id, C, T, mode)` rows of Table 1.
pub const TABLE_1: [(u32, f64, f64, Mode); 13] = [
    (1, 1.0, 6.0, Mode::NonFaultTolerant),
    (2, 1.0, 8.0, Mode::NonFaultTolerant),
    (3, 1.0, 12.0, Mode::NonFaultTolerant),
    (4, 2.0, 10.0, Mode::NonFaultTolerant),
    (5, 6.0, 24.0, Mode::NonFaultTolerant),
    (6, 1.0, 10.0, Mode::FailSilent),
    (7, 1.0, 15.0, Mode::FailSilent),
    (8, 2.0, 20.0, Mode::FailSilent),
    (9, 1.0, 4.0, Mode::FailSilent),
    (10, 1.0, 12.0, Mode::FaultTolerant),
    (11, 1.0, 15.0, Mode::FaultTolerant),
    (12, 1.0, 20.0, Mode::FaultTolerant),
    (13, 2.0, 30.0, Mode::FaultTolerant),
];

/// The total switching overhead `O_tot = 0.05` used for the "realistic"
/// design example of §4 (Table 2 rows (b) and (c)).
pub const PAPER_TOTAL_OVERHEAD: f64 = 0.05;

/// Builds the 13-task set of Table 1.
pub fn paper_taskset() -> TaskSet {
    let tasks: Vec<Task> = TABLE_1
        .iter()
        .map(|&(id, c, t, mode)| {
            Task::implicit_deadline(id, c, t, mode)
                .expect("Table 1 parameters are structurally valid")
        })
        .collect();
    TaskSet::new(tasks).expect("Table 1 task set is valid")
}

/// Builds the manual partition of §4 for the Table 1 task set.
pub fn paper_partition() -> SystemPartition {
    let id = TaskId;
    let nf = ModePartition::new(
        Mode::NonFaultTolerant,
        vec![vec![id(1)], vec![id(2), id(3)], vec![id(4)], vec![id(5)]],
    )
    .expect("NF partition uses at most 4 channels");
    let fs = ModePartition::new(
        Mode::FailSilent,
        vec![vec![id(6), id(7), id(8)], vec![id(9)]],
    )
    .expect("FS partition uses at most 2 channels");
    let ft = ModePartition::new(
        Mode::FaultTolerant,
        vec![vec![id(10), id(11), id(12), id(13)]],
    )
    .expect("FT partition uses 1 channel");
    SystemPartition::new(ft, fs, nf)
}

/// The paper task set together with its manual partition, pre-validated.
pub fn paper_example() -> (TaskSet, SystemPartition) {
    let tasks = paper_taskset();
    let partition = paper_partition();
    partition
        .validate(&tasks)
        .expect("the paper partition covers exactly the Table 1 tasks");
    (tasks, partition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_has_thirteen_tasks() {
        let set = paper_taskset();
        assert_eq!(set.len(), 13);
        assert!(set.all_implicit_deadlines());
    }

    #[test]
    fn mode_utilizations_match_table_2a() {
        // Table 2(a): required (max per-channel) utilisation per mode is
        // FT 0.267, FS 0.267, NF 0.250.
        let (tasks, partition) = paper_example();
        let max_u = partition.max_channel_utilizations(&tasks).unwrap();
        assert!((max_u.ft - 0.2667).abs() < 5e-4, "FT {:.4}", max_u.ft);
        assert!((max_u.fs - 0.2667).abs() < 5e-4, "FS {:.4}", max_u.fs);
        assert!((max_u.nf - 0.25).abs() < 1e-9, "NF {:.4}", max_u.nf);
    }

    #[test]
    fn total_mode_utilizations() {
        let tasks = paper_taskset();
        // Whole-mode utilisations (not per-channel): NF sums the 5 NF tasks.
        let u_nf = tasks.mode_utilization(Mode::NonFaultTolerant);
        let expected_nf = 1.0 / 6.0 + 1.0 / 8.0 + 1.0 / 12.0 + 0.2 + 0.25;
        assert!((u_nf - expected_nf).abs() < 1e-12);
        let u_ft = tasks.mode_utilization(Mode::FaultTolerant);
        assert!((u_ft - (1.0 / 12.0 + 1.0 / 15.0 + 0.05 + 2.0 / 30.0)).abs() < 1e-12);
    }

    #[test]
    fn partition_is_valid_and_covers_all_tasks() {
        let (tasks, partition) = paper_example();
        partition.validate(&tasks).unwrap();
        let per_mode = partition.channel_task_sets(&tasks).unwrap();
        assert_eq!(per_mode.nf.len(), 4);
        assert_eq!(per_mode.fs.len(), 2);
        assert_eq!(per_mode.ft.len(), 1);
        assert_eq!(per_mode.ft[0].len(), 4);
    }

    #[test]
    fn fs_channel_1_holds_tasks_6_7_8() {
        let (tasks, partition) = paper_example();
        let fs_sets = partition
            .mode(Mode::FailSilent)
            .channel_task_sets(&tasks)
            .unwrap();
        let ids: Vec<u32> = fs_sets[0].ids().iter().map(|i| i.0).collect();
        assert_eq!(ids, vec![6, 7, 8]);
        assert!((fs_sets[0].utilization() - 0.2667).abs() < 5e-4);
    }

    #[test]
    fn ft_hyperperiod_is_60() {
        let tasks = paper_taskset();
        let ft = tasks.tasks_in_mode(Mode::FaultTolerant).unwrap();
        assert!((ft.hyperperiod() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn paper_overhead_constant() {
        assert_eq!(PAPER_TOTAL_OVERHEAD, 0.05);
    }
}

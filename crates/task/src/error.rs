//! Error types for the task-model layer.
//!
//! All structural problems with a workload description (non-positive
//! periods, deadlines larger than periods, empty partitions, references to
//! unknown tasks, …) are reported through [`TaskModelError`] so that the
//! higher layers can surface a precise diagnostic instead of panicking.

use std::fmt;

use crate::mode::Mode;
use crate::task::TaskId;

/// Errors produced while constructing or validating tasks, task sets and
/// partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskModelError {
    /// A task was given a non-positive worst-case execution time.
    NonPositiveWcet {
        /// Identifier of the offending task.
        task: TaskId,
        /// The WCET that was rejected.
        wcet: f64,
    },
    /// A task was given a non-positive minimum inter-arrival time.
    NonPositivePeriod {
        /// Identifier of the offending task.
        task: TaskId,
        /// The period that was rejected.
        period: f64,
    },
    /// A task was given a non-positive relative deadline.
    NonPositiveDeadline {
        /// Identifier of the offending task.
        task: TaskId,
        /// The deadline that was rejected.
        deadline: f64,
    },
    /// The constrained-deadline assumption `D_i <= T_i` of the paper
    /// (§2.3) was violated.
    DeadlineExceedsPeriod {
        /// Identifier of the offending task.
        task: TaskId,
        /// Relative deadline of the task.
        deadline: f64,
        /// Period of the task.
        period: f64,
    },
    /// A task's WCET exceeds its deadline, so it can never complete in time
    /// even on a dedicated processor.
    WcetExceedsDeadline {
        /// Identifier of the offending task.
        task: TaskId,
        /// Worst-case execution time of the task.
        wcet: f64,
        /// Relative deadline of the task.
        deadline: f64,
    },
    /// Two tasks in the same task set share an identifier.
    DuplicateTaskId {
        /// The duplicated identifier.
        task: TaskId,
    },
    /// A partition referenced a task that is not part of the task set.
    UnknownTask {
        /// The unknown identifier.
        task: TaskId,
    },
    /// A task appears in more than one channel of a mode partition.
    TaskAssignedTwice {
        /// The task assigned to two channels.
        task: TaskId,
    },
    /// A task of the given mode was left out of the partition for that mode.
    TaskNotAssigned {
        /// The task missing from the partition.
        task: TaskId,
        /// The mode whose partition is incomplete.
        mode: Mode,
    },
    /// A task was assigned to the partition of a mode it does not require.
    ModeMismatch {
        /// The misplaced task.
        task: TaskId,
        /// The mode the task actually requires.
        expected: Mode,
        /// The mode of the partition it was assigned to.
        found: Mode,
    },
    /// A partition used more channels than the mode provides.
    TooManyChannels {
        /// The mode whose partition is over-subscribed.
        mode: Mode,
        /// Number of channels the partition used.
        used: usize,
        /// Number of channels the mode provides.
        available: usize,
    },
    /// An empty task set was supplied where at least one task is required.
    EmptyTaskSet,
    /// A generator was asked for an impossible workload (for example a
    /// per-task utilisation above 1 or a zero task count).
    InvalidGeneratorConfig {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for TaskModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveWcet { task, wcet } => {
                write!(f, "task {task}: worst-case execution time {wcet} must be positive")
            }
            Self::NonPositivePeriod { task, period } => {
                write!(f, "task {task}: period {period} must be positive")
            }
            Self::NonPositiveDeadline { task, deadline } => {
                write!(f, "task {task}: deadline {deadline} must be positive")
            }
            Self::DeadlineExceedsPeriod { task, deadline, period } => write!(
                f,
                "task {task}: deadline {deadline} exceeds period {period} (constrained-deadline model)"
            ),
            Self::WcetExceedsDeadline { task, wcet, deadline } => write!(
                f,
                "task {task}: WCET {wcet} exceeds deadline {deadline}; the task can never meet it"
            ),
            Self::DuplicateTaskId { task } => write!(f, "duplicate task identifier {task}"),
            Self::UnknownTask { task } => write!(f, "partition references unknown task {task}"),
            Self::TaskAssignedTwice { task } => {
                write!(f, "task {task} is assigned to more than one channel")
            }
            Self::TaskNotAssigned { task, mode } => {
                write!(f, "task {task} requires mode {mode} but is not assigned to any channel")
            }
            Self::ModeMismatch { task, expected, found } => write!(
                f,
                "task {task} requires mode {expected} but was assigned to a {found} channel"
            ),
            Self::TooManyChannels { mode, used, available } => write!(
                f,
                "partition for mode {mode} uses {used} channels but the platform provides {available}"
            ),
            Self::EmptyTaskSet => write!(f, "task set must contain at least one task"),
            Self::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid workload generator configuration: {reason}")
            }
        }
    }
}

impl std::error::Error for TaskModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_task() {
        let err = TaskModelError::NonPositiveWcet {
            task: TaskId(7),
            wcet: -1.0,
        };
        let msg = err.to_string();
        assert!(msg.contains("7"));
        assert!(msg.contains("-1"));
    }

    #[test]
    fn display_mode_mismatch_mentions_both_modes() {
        let err = TaskModelError::ModeMismatch {
            task: TaskId(3),
            expected: Mode::FaultTolerant,
            found: Mode::NonFaultTolerant,
        };
        let msg = err.to_string();
        assert!(msg.contains("FT"));
        assert!(msg.contains("NF"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&TaskModelError::EmptyTaskSet);
    }

    #[test]
    fn errors_compare_by_value() {
        assert_eq!(
            TaskModelError::DuplicateTaskId { task: TaskId(1) },
            TaskModelError::DuplicateTaskId { task: TaskId(1) }
        );
        assert_ne!(
            TaskModelError::DuplicateTaskId { task: TaskId(1) },
            TaskModelError::DuplicateTaskId { task: TaskId(2) }
        );
    }
}

//! Time representation shared by all `ftsched` crates.
//!
//! The paper works with two views of time:
//!
//! * the **analysis** (Eq. 6, 11, 15) is a continuous closed form — it takes
//!   square roots of time quantities — so the analysis layer works with
//!   plain `f64` seconds;
//! * the **simulation** needs an exact, drift-free clock so that event
//!   ordering and slot boundaries are reproducible. For that we use
//!   [`Time`] / [`Duration`], thin wrappers around a `u64` count of *ticks*.
//!
//! One tick is 1 µs of model time by default ([`TICKS_PER_UNIT`] = 10⁶ per
//! "paper time unit"), which is fine-grained enough to represent all the slot
//! lengths of Table 2 (three significant decimals) without rounding the
//! integer task parameters of Table 1.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of simulator ticks per paper "time unit".
///
/// Table 1 expresses computation times and periods in small integers; the
/// design solutions of Table 2 have three significant decimals (e.g.
/// `P = 2.966`). A microsecond-per-unit resolution keeps both exact.
pub const TICKS_PER_UNIT: u64 = 1_000_000;

/// An absolute instant of simulated time, measured in ticks since the start
/// of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time, measured in ticks.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for events that are not scheduled.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Creates an instant from a number of paper time units.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        assert!(units >= 0.0, "absolute time cannot be negative: {units}");
        Time((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count since the origin.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This instant expressed in paper time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is
    /// in the future.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration, `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable duration.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from a raw tick count.
    #[inline]
    pub const fn from_ticks(ticks: u64) -> Self {
        Duration(ticks)
    }

    /// Creates a duration from a number of paper time units.
    #[inline]
    pub fn from_units(units: f64) -> Self {
        assert!(units >= 0.0, "a duration cannot be negative: {units}");
        Duration((units * TICKS_PER_UNIT as f64).round() as u64)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// This duration expressed in paper time units.
    #[inline]
    pub fn as_units(self) -> f64 {
        self.0 as f64 / TICKS_PER_UNIT as f64
    }

    /// True if the duration is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_units())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.as_units())
    }
}

/// Greatest common divisor of two tick counts (Euclid).
#[inline]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a
}

/// Least common multiple of two tick counts, saturating at `u64::MAX` on
/// overflow so that pathological hyperperiods degrade gracefully instead of
/// panicking.
#[inline]
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    let g = gcd(a, b);
    (a / g).saturating_mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_round_trip_is_exact_for_table_1_values() {
        for units in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0, 24.0, 30.0] {
            let t = Duration::from_units(units);
            assert!((t.as_units() - units).abs() < 1e-9);
        }
    }

    #[test]
    fn unit_round_trip_is_exact_for_table_2_values() {
        for units in [2.966, 0.820, 1.281, 0.815, 0.855, 0.230, 0.252, 0.220, 0.05] {
            let t = Duration::from_units(units);
            assert!((t.as_units() - units).abs() < 1e-6, "{units}");
        }
    }

    #[test]
    fn time_plus_duration_is_associative_with_ticks() {
        let t = Time::from_ticks(10) + Duration::from_ticks(32);
        assert_eq!(t.ticks(), 42);
        assert_eq!((t - Time::from_ticks(2)).ticks(), 40);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let early = Time::from_ticks(5);
        let late = Time::from_ticks(9);
        assert_eq!(late.saturating_since(early).ticks(), 4);
        assert_eq!(early.saturating_since(late).ticks(), 0);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_ticks(30);
        let b = Duration::from_ticks(12);
        assert_eq!((a + b).ticks(), 42);
        assert_eq!((a - b).ticks(), 18);
        assert_eq!((a * 2).ticks(), 60);
        assert_eq!((a / 3).ticks(), 10);
        assert_eq!((a % b).ticks(), 6);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(a.saturating_sub(Duration::from_ticks(100)), Duration::ZERO);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [1u64, 2, 3, 4]
            .iter()
            .map(|&t| Duration::from_ticks(t))
            .sum();
        assert_eq!(total.ticks(), 10);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(0, 6), 0);
        assert_eq!(lcm(12, 15), 60);
    }

    #[test]
    fn lcm_saturates_instead_of_overflowing() {
        let huge = u64::MAX / 2 + 1;
        assert_eq!(lcm(huge, huge - 1), u64::MAX);
    }

    #[test]
    fn display_uses_units() {
        let d = Duration::from_units(2.966);
        assert_eq!(format!("{d}"), "2.966000");
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_duration_panics() {
        let _ = Duration::from_units(-1.0);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(Time::MAX.checked_add(Duration::from_ticks(1)).is_none());
        assert_eq!(
            Time::from_ticks(1).checked_add(Duration::from_ticks(1)),
            Some(Time::from_ticks(2))
        );
    }
}

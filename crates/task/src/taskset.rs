//! Task sets: collections of sporadic tasks with the aggregate quantities
//! the analysis needs (utilisation, hyperperiod, priority order, per-mode
//! grouping).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::error::TaskModelError;
use crate::mode::{Mode, PerMode};
use crate::task::{Task, TaskId};
use crate::time::lcm;

/// How tasks are ordered when a fixed-priority scheduler is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriorityOrder {
    /// Rate monotonic: shorter period ⇒ higher priority. This is the
    /// fixed-priority assignment used in the paper's example (§4).
    RateMonotonic,
    /// Deadline monotonic: shorter relative deadline ⇒ higher priority.
    /// Optimal for constrained-deadline fixed-priority scheduling.
    DeadlineMonotonic,
}

/// An immutable, validated collection of sporadic tasks.
///
/// A `TaskSet` may mix tasks of different modes (the whole application) or
/// contain the tasks of a single mode or a single channel — the analysis
/// functions only care about the tasks it holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Builds a task set from a list of tasks, validating every task and
    /// rejecting duplicate identifiers.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, TaskModelError> {
        if tasks.is_empty() {
            return Err(TaskModelError::EmptyTaskSet);
        }
        let mut seen = HashSet::with_capacity(tasks.len());
        for task in &tasks {
            task.validate()?;
            if !seen.insert(task.id) {
                return Err(TaskModelError::DuplicateTaskId { task: task.id });
            }
        }
        Ok(TaskSet { tasks })
    }

    /// Number of tasks in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the set holds no tasks. (Never true for a validated set, but
    /// kept for API completeness on derived/filtered sets.)
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Slice of the tasks, in insertion order.
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterator over the tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// Looks a task up by identifier.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// Total utilisation `U(T) = Σ C_i / T_i`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// Total density `Σ C_i / D_i`.
    pub fn density(&self) -> f64 {
        self.tasks.iter().map(Task::density).sum()
    }

    /// Largest single-task utilisation in the set.
    pub fn max_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).fold(0.0, f64::max)
    }

    /// Hyperperiod of the set, i.e. the least common multiple of the task
    /// periods, expressed in paper time units.
    ///
    /// Periods are converted to exact tick counts before taking the LCM so
    /// that fractional periods (e.g. generated workloads) are handled
    /// consistently; the result saturates gracefully for pathological
    /// period combinations.
    pub fn hyperperiod(&self) -> f64 {
        let ticks = self.tasks.iter().map(Task::period_in_ticks).fold(1u64, lcm);
        ticks as f64 / crate::time::TICKS_PER_UNIT as f64
    }

    /// True if every task has an implicit deadline (`D_i = T_i`).
    pub fn all_implicit_deadlines(&self) -> bool {
        self.tasks.iter().all(Task::has_implicit_deadline)
    }

    /// A stable 64-bit hash of the set's scheduling-relevant content:
    /// each task's `(id, C_i, T_i, D_i, mode)` in set order, with the
    /// real-valued parameters hashed by IEEE-754 bit pattern (no
    /// tolerance games). Task names are deliberately excluded — two sets
    /// that schedule identically hash identically.
    ///
    /// The hash is FNV-1a over 64-bit words, fixed for all platforms, so
    /// it can key cross-process memo tables (the campaign engine's
    /// synthetic design cache keys on it). It is *not* collision-free:
    /// callers that must never confuse distinct sets should verify with
    /// `==` on a hit.
    pub fn content_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut mix = |word: u64| {
            // FNV-1a over the word's bytes, little-endian.
            for byte in word.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        mix(self.tasks.len() as u64);
        for task in &self.tasks {
            mix(u64::from(task.id.0));
            mix(task.wcet.to_bits());
            mix(task.period.to_bits());
            mix(task.deadline.to_bits());
            mix(task.mode as u64);
        }
        hash
    }

    /// The subset of tasks requiring the given mode, preserving order.
    ///
    /// Returns `None` if no task requires that mode.
    pub fn tasks_in_mode(&self, mode: Mode) -> Option<TaskSet> {
        let tasks: Vec<Task> = self
            .tasks
            .iter()
            .filter(|t| t.mode == mode)
            .cloned()
            .collect();
        if tasks.is_empty() {
            None
        } else {
            Some(TaskSet { tasks })
        }
    }

    /// Splits the set into the three per-mode subsets `T_FT`, `T_FS`,
    /// `T_NF` (§2.3). Modes with no tasks map to `None`.
    pub fn split_by_mode(&self) -> PerMode<Option<TaskSet>> {
        PerMode::from_fn(|mode| self.tasks_in_mode(mode))
    }

    /// Utilisation of the subset of tasks requiring `mode` (0 if none).
    pub fn mode_utilization(&self, mode: Mode) -> f64 {
        self.tasks
            .iter()
            .filter(|t| t.mode == mode)
            .map(Task::utilization)
            .sum()
    }

    /// A copy of the tasks sorted by the given fixed-priority order,
    /// highest priority first. Ties are broken by task identifier so the
    /// order is deterministic.
    pub fn sorted_by_priority(&self, order: PriorityOrder) -> Vec<Task> {
        let mut sorted = self.tasks.clone();
        match order {
            PriorityOrder::RateMonotonic => sorted.sort_by(|a, b| {
                a.period
                    .partial_cmp(&b.period)
                    .expect("validated periods are finite")
                    .then(a.id.cmp(&b.id))
            }),
            PriorityOrder::DeadlineMonotonic => sorted.sort_by(|a, b| {
                a.deadline
                    .partial_cmp(&b.deadline)
                    .expect("validated deadlines are finite")
                    .then(a.id.cmp(&b.id))
            }),
        }
        sorted
    }

    /// A new task set holding only the tasks whose identifiers are in
    /// `ids`, in the order given by `ids`.
    ///
    /// # Errors
    ///
    /// Returns [`TaskModelError::UnknownTask`] if an identifier is not part
    /// of this set, or [`TaskModelError::EmptyTaskSet`] if `ids` is empty.
    pub fn subset(&self, ids: &[TaskId]) -> Result<TaskSet, TaskModelError> {
        if ids.is_empty() {
            return Err(TaskModelError::EmptyTaskSet);
        }
        let mut tasks = Vec::with_capacity(ids.len());
        for &id in ids {
            let task = self
                .get(id)
                .ok_or(TaskModelError::UnknownTask { task: id })?;
            tasks.push(task.clone());
        }
        TaskSet::new(tasks)
    }

    /// All task identifiers in insertion order.
    pub fn ids(&self) -> Vec<TaskId> {
        self.tasks.iter().map(|t| t.id).collect()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskBuilder;

    fn task(id: u32, c: f64, t: f64, mode: Mode) -> Task {
        Task::implicit_deadline(id, c, t, mode).unwrap()
    }

    fn sample_set() -> TaskSet {
        TaskSet::new(vec![
            task(1, 1.0, 6.0, Mode::NonFaultTolerant),
            task(2, 1.0, 8.0, Mode::NonFaultTolerant),
            task(9, 1.0, 4.0, Mode::FailSilent),
            task(10, 1.0, 12.0, Mode::FaultTolerant),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_sets() {
        assert!(matches!(
            TaskSet::new(vec![]),
            Err(TaskModelError::EmptyTaskSet)
        ));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let err = TaskSet::new(vec![
            task(1, 1.0, 6.0, Mode::NonFaultTolerant),
            task(1, 1.0, 8.0, Mode::NonFaultTolerant),
        ])
        .unwrap_err();
        assert!(matches!(err, TaskModelError::DuplicateTaskId { .. }));
    }

    #[test]
    fn rejects_invalid_member_tasks() {
        let bad = Task {
            id: TaskId(1),
            name: "bad".into(),
            wcet: 2.0,
            period: 1.0,
            deadline: 1.0,
            mode: Mode::NonFaultTolerant,
        };
        let err = TaskSet::new(vec![bad]).unwrap_err();
        assert!(matches!(err, TaskModelError::WcetExceedsDeadline { .. }));
    }

    #[test]
    fn content_hash_keys_on_scheduling_parameters_only() {
        let set = sample_set();
        assert_eq!(set.content_hash(), sample_set().content_hash());
        // Renaming a task does not change the hash...
        let mut renamed = set.tasks().to_vec();
        renamed[0].name = "rebadged".into();
        let renamed = TaskSet::new(renamed).unwrap();
        assert_eq!(renamed.content_hash(), set.content_hash());
        // ...but changing any scheduling parameter, the mode, the id or
        // the task order does.
        let shorter = TaskSet::new(vec![
            task(1, 1.0, 6.0, Mode::NonFaultTolerant),
            task(2, 1.0, 8.0, Mode::NonFaultTolerant),
            task(9, 0.5, 4.0, Mode::FailSilent),
            task(10, 1.0, 12.0, Mode::FaultTolerant),
        ])
        .unwrap();
        assert_ne!(shorter.content_hash(), set.content_hash());
        let remoded = TaskSet::new(vec![
            task(1, 1.0, 6.0, Mode::FailSilent),
            task(2, 1.0, 8.0, Mode::NonFaultTolerant),
            task(9, 1.0, 4.0, Mode::FailSilent),
            task(10, 1.0, 12.0, Mode::FaultTolerant),
        ])
        .unwrap();
        assert_ne!(remoded.content_hash(), set.content_hash());
        let mut reordered = set.tasks().to_vec();
        reordered.swap(0, 1);
        let reordered = TaskSet::new(reordered).unwrap();
        assert_ne!(reordered.content_hash(), set.content_hash());
    }

    #[test]
    fn utilization_sums_members() {
        let set = sample_set();
        let expected = 1.0 / 6.0 + 1.0 / 8.0 + 0.25 + 1.0 / 12.0;
        assert!((set.utilization() - expected).abs() < 1e-12);
        assert!((set.max_utilization() - 0.25).abs() < 1e-12);
        assert_eq!(set.density(), set.utilization());
    }

    #[test]
    fn hyperperiod_of_integer_periods() {
        let set = sample_set();
        // lcm(6, 8, 4, 12) = 24
        assert!((set.hyperperiod() - 24.0).abs() < 1e-9);
    }

    #[test]
    fn hyperperiod_handles_fractional_periods() {
        let set = TaskSet::new(vec![
            task(1, 0.1, 0.5, Mode::NonFaultTolerant),
            task(2, 0.1, 0.75, Mode::NonFaultTolerant),
        ])
        .unwrap();
        assert!((set.hyperperiod() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn split_by_mode_partitions_the_set() {
        let set = sample_set();
        let split = set.split_by_mode();
        assert_eq!(split.nf.as_ref().unwrap().len(), 2);
        assert_eq!(split.fs.as_ref().unwrap().len(), 1);
        assert_eq!(split.ft.as_ref().unwrap().len(), 1);
        let total: usize = Mode::ALL
            .iter()
            .map(|&m| split.get(m).as_ref().map_or(0, TaskSet::len))
            .sum();
        assert_eq!(total, set.len());
    }

    #[test]
    fn tasks_in_mode_returns_none_when_absent() {
        let set = TaskSet::new(vec![task(1, 1.0, 6.0, Mode::NonFaultTolerant)]).unwrap();
        assert!(set.tasks_in_mode(Mode::FaultTolerant).is_none());
    }

    #[test]
    fn mode_utilization_matches_split() {
        let set = sample_set();
        for mode in Mode::ALL {
            let direct = set.mode_utilization(mode);
            let via_split = set
                .tasks_in_mode(mode)
                .map(|s| s.utilization())
                .unwrap_or(0.0);
            assert!((direct - via_split).abs() < 1e-12);
        }
    }

    #[test]
    fn rm_priority_order_sorts_by_period() {
        let set = sample_set();
        let sorted = set.sorted_by_priority(PriorityOrder::RateMonotonic);
        let periods: Vec<f64> = sorted.iter().map(|t| t.period).collect();
        assert_eq!(periods, vec![4.0, 6.0, 8.0, 12.0]);
    }

    #[test]
    fn dm_priority_order_sorts_by_deadline() {
        let set = TaskSet::new(vec![
            Task::constrained_deadline(1, 1.0, 10.0, 3.0, Mode::NonFaultTolerant).unwrap(),
            Task::constrained_deadline(2, 1.0, 5.0, 5.0, Mode::NonFaultTolerant).unwrap(),
        ])
        .unwrap();
        let dm = set.sorted_by_priority(PriorityOrder::DeadlineMonotonic);
        assert_eq!(dm[0].id, TaskId(1));
        let rm = set.sorted_by_priority(PriorityOrder::RateMonotonic);
        assert_eq!(rm[0].id, TaskId(2));
    }

    #[test]
    fn priority_ties_break_by_id() {
        let set = TaskSet::new(vec![
            task(7, 1.0, 10.0, Mode::NonFaultTolerant),
            task(3, 1.0, 10.0, Mode::NonFaultTolerant),
        ])
        .unwrap();
        let sorted = set.sorted_by_priority(PriorityOrder::RateMonotonic);
        assert_eq!(sorted[0].id, TaskId(3));
    }

    #[test]
    fn subset_selects_and_orders_by_ids() {
        let set = sample_set();
        let sub = set.subset(&[TaskId(9), TaskId(1)]).unwrap();
        assert_eq!(sub.ids(), vec![TaskId(9), TaskId(1)]);
        assert!(matches!(
            set.subset(&[TaskId(99)]),
            Err(TaskModelError::UnknownTask { .. })
        ));
        assert!(matches!(set.subset(&[]), Err(TaskModelError::EmptyTaskSet)));
    }

    #[test]
    fn get_finds_tasks_by_id() {
        let set = sample_set();
        assert_eq!(set.get(TaskId(9)).unwrap().mode, Mode::FailSilent);
        assert!(set.get(TaskId(42)).is_none());
    }

    #[test]
    fn iteration_preserves_insertion_order() {
        let set = sample_set();
        let ids: Vec<u32> = (&set).into_iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2, 9, 10]);
    }

    #[test]
    fn all_implicit_deadlines_detects_constrained_tasks() {
        let mut tasks = sample_set().tasks().to_vec();
        assert!(TaskSet::new(tasks.clone())
            .unwrap()
            .all_implicit_deadlines());
        tasks.push(
            TaskBuilder::new(20)
                .wcet(1.0)
                .period(10.0)
                .deadline(5.0)
                .mode(Mode::NonFaultTolerant)
                .build()
                .unwrap(),
        );
        assert!(!TaskSet::new(tasks).unwrap().all_implicit_deadlines());
    }

    #[test]
    fn serde_round_trip() {
        let set = sample_set();
        let json = serde_json::to_string(&set).unwrap();
        let back: TaskSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}

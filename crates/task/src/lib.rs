//! # ftsched-task
//!
//! Task model substrate for the `ftsched` reproduction of
//! *"A Flexible Scheme for Scheduling Fault-Tolerant Real-Time Tasks on
//! Multiprocessors"* (Cirinei, Bini, Lipari, Ferrari — IPPS 2007).
//!
//! This crate provides everything the analysis, design and simulation layers
//! need to talk about workloads:
//!
//! * [`time`] — the two time domains used throughout the workspace: a
//!   discrete, tick-based [`time::Time`] for the simulators and plain `f64`
//!   seconds for the closed-form analysis of the paper.
//! * [`mode`] — the three operating modes of the platform
//!   ([`mode::Mode::FaultTolerant`], [`mode::Mode::FailSilent`],
//!   [`mode::Mode::NonFaultTolerant`]) and their channel/replication
//!   characteristics.
//! * [`task`] — the sporadic task model `(C_i, T_i, D_i, mode_i)` of §2.3.
//! * [`taskset`] — collections of tasks, utilisation and hyperperiod math,
//!   priority assignment (RM / DM) and grouping by mode.
//! * [`partition`] — static partitions of a mode's tasks onto the channels
//!   that mode provides (4 for NF, 2 for FS, 1 for FT), as required by the
//!   partitioned scheduling strategy of §3.
//! * [`generator`] — seeded random workload generators (UUniFast and
//!   friends) used by the extension experiments.
//! * [`examples`] — the concrete 13-task example of the paper's Table 1 and
//!   its manual partition from §4.
//!
//! The crate is deliberately free of any scheduling logic: it only describes
//! workloads and checks their structural validity.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod examples;
pub mod generator;
pub mod mode;
pub mod partition;
pub mod task;
pub mod taskset;
pub mod time;

pub use error::TaskModelError;
pub use mode::{Mode, PerMode, PROCESSOR_COUNT};
pub use partition::{ModePartition, SystemPartition};
pub use task::{Task, TaskBuilder, TaskId};
pub use taskset::{PriorityOrder, TaskSet};
pub use time::{Duration, Time};

//! The sporadic task model of §2.3.
//!
//! A task `τ_i` is the triplet `(C_i, T_i, D_i)` — worst-case execution
//! time, minimum inter-arrival time and relative deadline — plus the
//! operating mode it requires (`mode_i`). Tasks are independent (no shared
//! resources) and deadlines are constrained (`D_i ≤ T_i`), exactly as in the
//! paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::TaskModelError;
use crate::mode::Mode;
use crate::time::{Duration, TICKS_PER_UNIT};

/// Identifier of a task inside a task set.
///
/// The paper numbers tasks `τ_1 … τ_13`; we keep the same convention of
/// small integer identifiers (they need not be contiguous).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

/// A sporadic real-time task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Identifier, unique within a task set.
    pub id: TaskId,
    /// Human-readable name (defaults to `"tau<i>"`).
    pub name: String,
    /// Worst-case execution time `C_i`, in paper time units.
    pub wcet: f64,
    /// Minimum inter-arrival time (period) `T_i`, in paper time units.
    pub period: f64,
    /// Relative deadline `D_i ≤ T_i`, in paper time units.
    pub deadline: f64,
    /// Operating mode the task requires (FT, FS or NF).
    pub mode: Mode,
}

impl Task {
    /// Convenience constructor for an implicit-deadline task
    /// (`D_i = T_i`), the case used throughout the paper's example.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskModelError`] if any parameter is non-positive or
    /// `wcet > period`.
    pub fn implicit_deadline(
        id: u32,
        wcet: f64,
        period: f64,
        mode: Mode,
    ) -> Result<Task, TaskModelError> {
        TaskBuilder::new(id)
            .wcet(wcet)
            .period(period)
            .mode(mode)
            .build()
    }

    /// Convenience constructor for a constrained-deadline task.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskModelError`] if any parameter is non-positive,
    /// `deadline > period` or `wcet > deadline`.
    pub fn constrained_deadline(
        id: u32,
        wcet: f64,
        period: f64,
        deadline: f64,
        mode: Mode,
    ) -> Result<Task, TaskModelError> {
        TaskBuilder::new(id)
            .wcet(wcet)
            .period(period)
            .deadline(deadline)
            .mode(mode)
            .build()
    }

    /// Utilisation `U_i = C_i / T_i`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet / self.period
    }

    /// Density `C_i / D_i` (equals utilisation for implicit deadlines).
    #[inline]
    pub fn density(&self) -> f64 {
        self.wcet / self.deadline
    }

    /// Whether the task has an implicit deadline (`D_i = T_i`).
    #[inline]
    pub fn has_implicit_deadline(&self) -> bool {
        (self.deadline - self.period).abs() < f64::EPSILON * self.period.max(1.0)
    }

    /// Worst-case execution time as a discrete simulator duration.
    #[inline]
    pub fn wcet_ticks(&self) -> Duration {
        Duration::from_units(self.wcet)
    }

    /// Period as a discrete simulator duration.
    #[inline]
    pub fn period_ticks(&self) -> Duration {
        Duration::from_units(self.period)
    }

    /// Relative deadline as a discrete simulator duration.
    #[inline]
    pub fn deadline_ticks(&self) -> Duration {
        Duration::from_units(self.deadline)
    }

    /// Period expressed in raw ticks; used for hyperperiod computations.
    #[inline]
    pub fn period_in_ticks(&self) -> u64 {
        (self.period * TICKS_PER_UNIT as f64).round() as u64
    }

    /// Validates the structural constraints of the sporadic model.
    pub fn validate(&self) -> Result<(), TaskModelError> {
        if self.wcet <= 0.0 || !self.wcet.is_finite() {
            return Err(TaskModelError::NonPositiveWcet {
                task: self.id,
                wcet: self.wcet,
            });
        }
        if self.period <= 0.0 || !self.period.is_finite() {
            return Err(TaskModelError::NonPositivePeriod {
                task: self.id,
                period: self.period,
            });
        }
        if self.deadline <= 0.0 || !self.deadline.is_finite() {
            return Err(TaskModelError::NonPositiveDeadline {
                task: self.id,
                deadline: self.deadline,
            });
        }
        if self.deadline > self.period + 1e-12 {
            return Err(TaskModelError::DeadlineExceedsPeriod {
                task: self.id,
                deadline: self.deadline,
                period: self.period,
            });
        }
        if self.wcet > self.deadline + 1e-12 {
            return Err(TaskModelError::WcetExceedsDeadline {
                task: self.id,
                wcet: self.wcet,
                deadline: self.deadline,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] C={} T={} D={} U={:.3}",
            self.id,
            self.mode,
            self.wcet,
            self.period,
            self.deadline,
            self.utilization()
        )
    }
}

/// Builder for [`Task`] values.
///
/// ```
/// use ftsched_task::{Mode, TaskBuilder};
///
/// let task = TaskBuilder::new(9)
///     .name("sensor-fusion")
///     .wcet(1.0)
///     .period(4.0)
///     .mode(Mode::FailSilent)
///     .build()
///     .unwrap();
/// assert_eq!(task.deadline, 4.0); // implicit deadline by default
/// assert_eq!(task.utilization(), 0.25);
/// ```
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    name: Option<String>,
    wcet: f64,
    period: f64,
    deadline: Option<f64>,
    mode: Mode,
}

impl TaskBuilder {
    /// Starts building the task with identifier `id`.
    pub fn new(id: u32) -> Self {
        TaskBuilder {
            id: TaskId(id),
            name: None,
            wcet: 0.0,
            period: 0.0,
            deadline: None,
            mode: Mode::NonFaultTolerant,
        }
    }

    /// Sets the human-readable name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the worst-case execution time `C_i`.
    pub fn wcet(mut self, wcet: f64) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the minimum inter-arrival time `T_i`.
    pub fn period(mut self, period: f64) -> Self {
        self.period = period;
        self
    }

    /// Sets the relative deadline `D_i`. If omitted, the deadline defaults
    /// to the period (implicit deadline).
    pub fn deadline(mut self, deadline: f64) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the required operating mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Finalises the task, validating all structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskModelError`] describing the first violated
    /// constraint.
    pub fn build(self) -> Result<Task, TaskModelError> {
        let task = Task {
            id: self.id,
            name: self.name.unwrap_or_else(|| format!("tau{}", self.id.0)),
            wcet: self.wcet,
            period: self.period,
            deadline: self.deadline.unwrap_or(self.period),
            mode: self.mode,
        };
        task.validate()?;
        Ok(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_deadline_defaults_deadline_to_period() {
        let t = Task::implicit_deadline(1, 1.0, 6.0, Mode::NonFaultTolerant).unwrap();
        assert_eq!(t.deadline, 6.0);
        assert!(t.has_implicit_deadline());
        assert!((t.utilization() - 1.0 / 6.0).abs() < 1e-12);
        assert_eq!(t.utilization(), t.density());
    }

    #[test]
    fn constrained_deadline_is_accepted() {
        let t = Task::constrained_deadline(2, 1.0, 10.0, 5.0, Mode::FaultTolerant).unwrap();
        assert!(!t.has_implicit_deadline());
        assert_eq!(t.density(), 0.2);
        assert_eq!(t.utilization(), 0.1);
    }

    #[test]
    fn zero_wcet_is_rejected() {
        let err = Task::implicit_deadline(1, 0.0, 6.0, Mode::NonFaultTolerant).unwrap_err();
        assert!(matches!(err, TaskModelError::NonPositiveWcet { .. }));
    }

    #[test]
    fn zero_period_is_rejected() {
        let err = TaskBuilder::new(1)
            .wcet(1.0)
            .period(0.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskModelError::NonPositivePeriod { .. }));
    }

    #[test]
    fn negative_deadline_is_rejected() {
        let err = TaskBuilder::new(1)
            .wcet(1.0)
            .period(5.0)
            .deadline(-2.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskModelError::NonPositiveDeadline { .. }));
    }

    #[test]
    fn deadline_beyond_period_is_rejected() {
        let err = Task::constrained_deadline(3, 1.0, 5.0, 6.0, Mode::FailSilent).unwrap_err();
        assert!(matches!(err, TaskModelError::DeadlineExceedsPeriod { .. }));
    }

    #[test]
    fn wcet_beyond_deadline_is_rejected() {
        let err = Task::constrained_deadline(3, 4.0, 5.0, 3.0, Mode::FailSilent).unwrap_err();
        assert!(matches!(err, TaskModelError::WcetExceedsDeadline { .. }));
    }

    #[test]
    fn infinite_parameters_are_rejected() {
        let err = TaskBuilder::new(1)
            .wcet(f64::INFINITY)
            .period(5.0)
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskModelError::NonPositiveWcet { .. }));
    }

    #[test]
    fn builder_sets_name_and_mode() {
        let t = TaskBuilder::new(4)
            .name("engine-control")
            .wcet(2.0)
            .period(10.0)
            .mode(Mode::FaultTolerant)
            .build()
            .unwrap();
        assert_eq!(t.name, "engine-control");
        assert_eq!(t.mode, Mode::FaultTolerant);
    }

    #[test]
    fn default_name_follows_id() {
        let t = Task::implicit_deadline(13, 2.0, 30.0, Mode::FaultTolerant).unwrap();
        assert_eq!(t.name, "tau13");
    }

    #[test]
    fn tick_conversions_are_consistent() {
        let t = Task::implicit_deadline(5, 6.0, 24.0, Mode::NonFaultTolerant).unwrap();
        assert_eq!(t.wcet_ticks().as_units(), 6.0);
        assert_eq!(t.period_ticks().as_units(), 24.0);
        assert_eq!(t.deadline_ticks(), t.period_ticks());
        assert_eq!(t.period_in_ticks(), 24 * crate::time::TICKS_PER_UNIT);
    }

    #[test]
    fn display_contains_mode_and_utilization() {
        let t = Task::implicit_deadline(9, 1.0, 4.0, Mode::FailSilent).unwrap();
        let s = format!("{t}");
        assert!(s.contains("FS"));
        assert!(s.contains("0.250"));
    }

    #[test]
    fn serde_round_trip() {
        let t = Task::implicit_deadline(9, 1.0, 4.0, Mode::FailSilent).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}

//! Static partitions of tasks onto the channels of each operating mode.
//!
//! The paper adopts partitioned scheduling (§3): during NF mode the NF tasks
//! are split into four per-processor subsets `T_NF^1 … T_NF^4`, during FS
//! mode the FS tasks are split into two per-channel subsets
//! `T_FS^1, T_FS^2`, and during FT mode all FT tasks run on the single
//! fault-tolerant channel. [`ModePartition`] represents one mode's
//! assignment and [`SystemPartition`] the whole application's.

use serde::{Deserialize, Serialize};

use crate::error::TaskModelError;
use crate::mode::{Mode, PerMode};
use crate::task::TaskId;
use crate::taskset::TaskSet;

/// Assignment of one mode's tasks to that mode's logical channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModePartition {
    mode: Mode,
    /// `channels[i]` is the set of task ids assigned to channel `i`.
    channels: Vec<Vec<TaskId>>,
}

impl ModePartition {
    /// Creates a partition for `mode` from explicit per-channel id lists.
    ///
    /// Channels may be fewer than the mode provides (unused channels stay
    /// idle) but never more.
    ///
    /// # Errors
    ///
    /// Returns [`TaskModelError::TooManyChannels`] if more channels are
    /// supplied than the mode offers, or
    /// [`TaskModelError::TaskAssignedTwice`] if a task id appears twice.
    pub fn new(mode: Mode, channels: Vec<Vec<TaskId>>) -> Result<Self, TaskModelError> {
        if channels.len() > mode.channels() {
            return Err(TaskModelError::TooManyChannels {
                mode,
                used: channels.len(),
                available: mode.channels(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for channel in &channels {
            for &id in channel {
                if !seen.insert(id) {
                    return Err(TaskModelError::TaskAssignedTwice { task: id });
                }
            }
        }
        Ok(ModePartition { mode, channels })
    }

    /// Creates an empty partition (no channels used) for `mode`.
    pub fn empty(mode: Mode) -> Self {
        ModePartition {
            mode,
            channels: Vec::new(),
        }
    }

    /// The mode this partition belongs to.
    #[inline]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The per-channel id lists.
    #[inline]
    pub fn channels(&self) -> &[Vec<TaskId>] {
        &self.channels
    }

    /// Number of channels actually used (non-empty or explicitly listed).
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// All task ids assigned by this partition, in channel order.
    pub fn assigned_ids(&self) -> Vec<TaskId> {
        self.channels.iter().flatten().copied().collect()
    }

    /// Index of the channel a task is assigned to, if any.
    pub fn channel_of(&self, id: TaskId) -> Option<usize> {
        self.channels.iter().position(|c| c.contains(&id))
    }

    /// Materialises the per-channel task sets from the full task set.
    ///
    /// Empty channels are skipped (they impose no constraint on the slot
    /// length).
    ///
    /// # Errors
    ///
    /// Propagates unknown-task errors from [`TaskSet::subset`].
    pub fn channel_task_sets(&self, tasks: &TaskSet) -> Result<Vec<TaskSet>, TaskModelError> {
        let mut sets = Vec::with_capacity(self.channels.len());
        for channel in &self.channels {
            if channel.is_empty() {
                continue;
            }
            sets.push(tasks.subset(channel)?);
        }
        Ok(sets)
    }

    /// Validates the partition against the full application task set:
    /// every referenced task must exist, require this mode, and every task
    /// of this mode in `tasks` must be assigned to exactly one channel.
    pub fn validate(&self, tasks: &TaskSet) -> Result<(), TaskModelError> {
        for &id in self.channels.iter().flatten() {
            let task = tasks
                .get(id)
                .ok_or(TaskModelError::UnknownTask { task: id })?;
            if task.mode != self.mode {
                return Err(TaskModelError::ModeMismatch {
                    task: id,
                    expected: task.mode,
                    found: self.mode,
                });
            }
        }
        let assigned: std::collections::HashSet<TaskId> = self.assigned_ids().into_iter().collect();
        for task in tasks.iter().filter(|t| t.mode == self.mode) {
            if !assigned.contains(&task.id) {
                return Err(TaskModelError::TaskNotAssigned {
                    task: task.id,
                    mode: self.mode,
                });
            }
        }
        Ok(())
    }

    /// Largest per-channel utilisation of this partition
    /// (`max_i U(T_k^i)`), the quantity the necessary bandwidth condition
    /// of §4 compares against `Q̃_k / P`.
    pub fn max_channel_utilization(&self, tasks: &TaskSet) -> Result<f64, TaskModelError> {
        let sets = self.channel_task_sets(tasks)?;
        Ok(sets.iter().map(TaskSet::utilization).fold(0.0, f64::max))
    }
}

/// The application-wide partition: one [`ModePartition`] per operating mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPartition {
    /// Per-mode channel assignments.
    pub modes: PerMode<ModePartition>,
}

impl SystemPartition {
    /// Builds a system partition from the three per-mode partitions.
    pub fn new(ft: ModePartition, fs: ModePartition, nf: ModePartition) -> Self {
        SystemPartition {
            modes: PerMode { ft, fs, nf },
        }
    }

    /// The partition of the given mode.
    pub fn mode(&self, mode: Mode) -> &ModePartition {
        self.modes.get(mode)
    }

    /// Validates every per-mode partition against the application task set.
    pub fn validate(&self, tasks: &TaskSet) -> Result<(), TaskModelError> {
        for mode in Mode::ALL {
            self.modes.get(mode).validate(tasks)?;
        }
        Ok(())
    }

    /// Per-mode, per-channel task sets.
    pub fn channel_task_sets(
        &self,
        tasks: &TaskSet,
    ) -> Result<PerMode<Vec<TaskSet>>, TaskModelError> {
        let ft = self.modes.ft.channel_task_sets(tasks)?;
        let fs = self.modes.fs.channel_task_sets(tasks)?;
        let nf = self.modes.nf.channel_task_sets(tasks)?;
        Ok(PerMode { ft, fs, nf })
    }

    /// Per-mode maximum channel utilisation.
    pub fn max_channel_utilizations(
        &self,
        tasks: &TaskSet,
    ) -> Result<PerMode<f64>, TaskModelError> {
        Ok(PerMode {
            ft: self.modes.ft.max_channel_utilization(tasks)?,
            fs: self.modes.fs.max_channel_utilization(tasks)?,
            nf: self.modes.nf.max_channel_utilization(tasks)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn task(id: u32, c: f64, t: f64, mode: Mode) -> Task {
        Task::implicit_deadline(id, c, t, mode).unwrap()
    }

    fn mixed_set() -> TaskSet {
        TaskSet::new(vec![
            task(1, 1.0, 6.0, Mode::NonFaultTolerant),
            task(2, 1.0, 8.0, Mode::NonFaultTolerant),
            task(3, 1.0, 12.0, Mode::NonFaultTolerant),
            task(6, 1.0, 10.0, Mode::FailSilent),
            task(9, 1.0, 4.0, Mode::FailSilent),
            task(10, 1.0, 12.0, Mode::FaultTolerant),
        ])
        .unwrap()
    }

    fn id(v: u32) -> TaskId {
        TaskId(v)
    }

    #[test]
    fn partition_rejects_too_many_channels() {
        let err = ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(9)], vec![]])
            .unwrap_err();
        assert!(matches!(
            err,
            TaskModelError::TooManyChannels {
                used: 3,
                available: 2,
                ..
            }
        ));
    }

    #[test]
    fn partition_rejects_double_assignment() {
        let err = ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(6)]]).unwrap_err();
        assert!(matches!(err, TaskModelError::TaskAssignedTwice { .. }));
    }

    #[test]
    fn validate_detects_unknown_tasks() {
        let set = mixed_set();
        let part = ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(99)]]).unwrap();
        assert!(matches!(
            part.validate(&set),
            Err(TaskModelError::UnknownTask { .. })
        ));
    }

    #[test]
    fn validate_detects_mode_mismatch() {
        let set = mixed_set();
        let part =
            ModePartition::new(Mode::FailSilent, vec![vec![id(6), id(1)], vec![id(9)]]).unwrap();
        assert!(matches!(
            part.validate(&set),
            Err(TaskModelError::ModeMismatch { .. })
        ));
    }

    #[test]
    fn validate_detects_unassigned_tasks() {
        let set = mixed_set();
        let part = ModePartition::new(Mode::FailSilent, vec![vec![id(6)]]).unwrap();
        assert!(matches!(
            part.validate(&set),
            Err(TaskModelError::TaskNotAssigned { .. })
        ));
    }

    #[test]
    fn valid_partition_passes_validation() {
        let set = mixed_set();
        let part = ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(9)]]).unwrap();
        part.validate(&set).unwrap();
        assert_eq!(part.channel_of(id(9)), Some(1));
        assert_eq!(part.channel_of(id(1)), None);
    }

    #[test]
    fn channel_task_sets_skip_empty_channels() {
        let set = mixed_set();
        let part = ModePartition::new(
            Mode::NonFaultTolerant,
            vec![vec![id(1)], vec![], vec![id(2), id(3)]],
        )
        .unwrap();
        let sets = part.channel_task_sets(&set).unwrap();
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[1].len(), 2);
    }

    #[test]
    fn max_channel_utilization_takes_the_max() {
        let set = mixed_set();
        let part = ModePartition::new(
            Mode::NonFaultTolerant,
            vec![vec![id(1)], vec![id(2), id(3)]],
        )
        .unwrap();
        let max_u = part.max_channel_utilization(&set).unwrap();
        let expected: f64 = 1.0 / 8.0 + 1.0 / 12.0; // channel {τ2, τ3}
        assert!((max_u - expected.max(1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn system_partition_validates_all_modes() {
        let set = mixed_set();
        let sys = SystemPartition::new(
            ModePartition::new(Mode::FaultTolerant, vec![vec![id(10)]]).unwrap(),
            ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(9)]]).unwrap(),
            ModePartition::new(
                Mode::NonFaultTolerant,
                vec![vec![id(1)], vec![id(2), id(3)]],
            )
            .unwrap(),
        );
        sys.validate(&set).unwrap();
        let per_mode = sys.channel_task_sets(&set).unwrap();
        assert_eq!(per_mode.ft.len(), 1);
        assert_eq!(per_mode.fs.len(), 2);
        assert_eq!(per_mode.nf.len(), 2);
        let max_u = sys.max_channel_utilizations(&set).unwrap();
        assert!(max_u.fs >= 0.25);
    }

    #[test]
    fn empty_partition_has_no_channels() {
        let p = ModePartition::empty(Mode::FaultTolerant);
        assert_eq!(p.channel_count(), 0);
        assert!(p.assigned_ids().is_empty());
    }

    #[test]
    fn serde_round_trip() {
        let part = ModePartition::new(Mode::FailSilent, vec![vec![id(6)], vec![id(9)]]).unwrap();
        let json = serde_json::to_string(&part).unwrap();
        let back: ModePartition = serde_json::from_str(&json).unwrap();
        assert_eq!(back, part);
    }
}

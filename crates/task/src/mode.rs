//! Operating modes of the reconfigurable platform (§2.2 and §2.4 of the
//! paper).
//!
//! Under the single-transient-fault assumption, the platform can be
//! configured in three ways:
//!
//! * **FT (fault-tolerant)** — all four processors run in redundant
//!   lock-step behind a majority voter. A fault in any one core is *masked*;
//!   the application never sees a wrong result. One logical channel.
//! * **FS (fail-silent)** — the processors are coupled into two lock-step
//!   pairs, each behind a comparator. A fault in one core of a pair is
//!   *detected* and the pair's output is blocked (the channel goes silent);
//!   wrong results never propagate, but the affected work is lost. Two
//!   logical channels.
//! * **NF (non-fault-tolerant)** — all four processors run independently.
//!   Maximum parallelism, no fault protection. Four logical channels.
//!
//! The number of logical channels per mode is what the partitioned
//! scheduling strategy of §3 partitions tasks onto, and what the design
//! equations (Eq. 13–14) take the per-channel maximum over.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of physical processors on the platform of Fig. 1.
pub const PROCESSOR_COUNT: usize = 4;

/// The three operating modes of the platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Mode {
    /// Redundant lock-step of all four cores with majority voting: faults
    /// are masked.
    FaultTolerant,
    /// Two independent lock-step pairs with comparators: faults are detected
    /// and the faulty channel is silenced.
    FailSilent,
    /// Four independent cores: no protection, maximum parallelism.
    NonFaultTolerant,
}

impl Mode {
    /// All modes, in the slot order used by the paper's Figure 2
    /// (FT slot first, then FS, then NF).
    pub const ALL: [Mode; 3] = [
        Mode::FaultTolerant,
        Mode::FailSilent,
        Mode::NonFaultTolerant,
    ];

    /// Number of logical execution channels the platform offers in this
    /// mode (`numP_k` in Eq. 15).
    #[inline]
    pub const fn channels(self) -> usize {
        match self {
            Mode::FaultTolerant => 1,
            Mode::FailSilent => 2,
            Mode::NonFaultTolerant => 4,
        }
    }

    /// Number of physical cores ganged together to form one channel in this
    /// mode.
    #[inline]
    pub const fn cores_per_channel(self) -> usize {
        PROCESSOR_COUNT / self.channels()
    }

    /// Whether a single transient fault can ever cause a *wrong* value to
    /// reach the shared memory while the platform runs in this mode.
    #[inline]
    pub const fn can_propagate_wrong_results(self) -> bool {
        matches!(self, Mode::NonFaultTolerant)
    }

    /// Whether a single transient fault is masked (execution continues with
    /// the correct result) in this mode.
    #[inline]
    pub const fn masks_faults(self) -> bool {
        matches!(self, Mode::FaultTolerant)
    }

    /// Whether a single transient fault is detected (even if not corrected)
    /// in this mode.
    #[inline]
    pub const fn detects_faults(self) -> bool {
        matches!(self, Mode::FaultTolerant | Mode::FailSilent)
    }

    /// Short identifier used in tables and traces (`FT`, `FS`, `NF`).
    #[inline]
    pub const fn short_name(self) -> &'static str {
        match self {
            Mode::FaultTolerant => "FT",
            Mode::FailSilent => "FS",
            Mode::NonFaultTolerant => "NF",
        }
    }

    /// Index of the mode in the canonical slot order (FT = 0, FS = 1,
    /// NF = 2).
    #[inline]
    pub const fn slot_index(self) -> usize {
        match self {
            Mode::FaultTolerant => 0,
            Mode::FailSilent => 1,
            Mode::NonFaultTolerant => 2,
        }
    }

    /// Parses the two-letter identifier used in configuration files.
    pub fn parse(s: &str) -> Option<Mode> {
        match s.trim().to_ascii_uppercase().as_str() {
            "FT" => Some(Mode::FaultTolerant),
            "FS" => Some(Mode::FailSilent),
            "NF" => Some(Mode::NonFaultTolerant),
            _ => None,
        }
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A per-mode triple of values, indexed by [`Mode`].
///
/// Many quantities in the paper come in threes — slot lengths `Q_k`,
/// overheads `O_k`, available quanta `Q̃_k`, per-mode `minQ` values — and
/// `PerMode` gives them a small, copyable container with ergonomic indexing.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PerMode<T> {
    /// Value associated with the fault-tolerant mode.
    pub ft: T,
    /// Value associated with the fail-silent mode.
    pub fs: T,
    /// Value associated with the non-fault-tolerant mode.
    pub nf: T,
}

impl<T> PerMode<T> {
    /// Builds a `PerMode` by evaluating `f` on every mode.
    pub fn from_fn(mut f: impl FnMut(Mode) -> T) -> Self {
        PerMode {
            ft: f(Mode::FaultTolerant),
            fs: f(Mode::FailSilent),
            nf: f(Mode::NonFaultTolerant),
        }
    }

    /// Returns a reference to the value for `mode`.
    pub fn get(&self, mode: Mode) -> &T {
        match mode {
            Mode::FaultTolerant => &self.ft,
            Mode::FailSilent => &self.fs,
            Mode::NonFaultTolerant => &self.nf,
        }
    }

    /// Returns a mutable reference to the value for `mode`.
    pub fn get_mut(&mut self, mode: Mode) -> &mut T {
        match mode {
            Mode::FaultTolerant => &mut self.ft,
            Mode::FailSilent => &mut self.fs,
            Mode::NonFaultTolerant => &mut self.nf,
        }
    }

    /// Applies `f` to every element, preserving the mode association.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> PerMode<U> {
        PerMode {
            ft: f(&self.ft),
            fs: f(&self.fs),
            nf: f(&self.nf),
        }
    }

    /// Iterates over `(mode, &value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Mode, &T)> {
        Mode::ALL.iter().map(move |&m| (m, self.get(m)))
    }
}

impl<T: Copy> PerMode<T> {
    /// Builds a `PerMode` with the same value for every mode.
    pub fn splat(value: T) -> Self {
        PerMode {
            ft: value,
            fs: value,
            nf: value,
        }
    }
}

impl PerMode<f64> {
    /// Sum of the three per-mode values (used for `O_tot` and for the
    /// left-hand side of Eq. 15).
    pub fn total(&self) -> f64 {
        self.ft + self.fs + self.nf
    }
}

impl<T> std::ops::Index<Mode> for PerMode<T> {
    type Output = T;
    fn index(&self, mode: Mode) -> &T {
        self.get(mode)
    }
}

impl<T> std::ops::IndexMut<Mode> for PerMode<T> {
    fn index_mut(&mut self, mode: Mode) -> &mut T {
        self.get_mut(mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_counts_match_the_paper() {
        assert_eq!(Mode::FaultTolerant.channels(), 1);
        assert_eq!(Mode::FailSilent.channels(), 2);
        assert_eq!(Mode::NonFaultTolerant.channels(), 4);
    }

    #[test]
    fn cores_per_channel_partition_the_platform() {
        for mode in Mode::ALL {
            assert_eq!(mode.channels() * mode.cores_per_channel(), PROCESSOR_COUNT);
        }
    }

    #[test]
    fn fault_semantics_per_mode() {
        assert!(Mode::FaultTolerant.masks_faults());
        assert!(Mode::FaultTolerant.detects_faults());
        assert!(!Mode::FaultTolerant.can_propagate_wrong_results());

        assert!(!Mode::FailSilent.masks_faults());
        assert!(Mode::FailSilent.detects_faults());
        assert!(!Mode::FailSilent.can_propagate_wrong_results());

        assert!(!Mode::NonFaultTolerant.masks_faults());
        assert!(!Mode::NonFaultTolerant.detects_faults());
        assert!(Mode::NonFaultTolerant.can_propagate_wrong_results());
    }

    #[test]
    fn slot_order_is_ft_fs_nf() {
        assert_eq!(Mode::ALL[0], Mode::FaultTolerant);
        assert_eq!(Mode::ALL[1], Mode::FailSilent);
        assert_eq!(Mode::ALL[2], Mode::NonFaultTolerant);
        for (i, m) in Mode::ALL.iter().enumerate() {
            assert_eq!(m.slot_index(), i);
        }
    }

    #[test]
    fn parse_round_trips_short_names() {
        for mode in Mode::ALL {
            assert_eq!(Mode::parse(mode.short_name()), Some(mode));
            assert_eq!(Mode::parse(&mode.short_name().to_lowercase()), Some(mode));
        }
        assert_eq!(Mode::parse("bogus"), None);
    }

    #[test]
    fn per_mode_indexing_and_total() {
        let mut pm = PerMode::splat(0.0);
        pm[Mode::FaultTolerant] = 1.0;
        pm[Mode::FailSilent] = 2.0;
        pm[Mode::NonFaultTolerant] = 3.5;
        assert_eq!(pm.total(), 6.5);
        assert_eq!(pm[Mode::FailSilent], 2.0);
    }

    #[test]
    fn per_mode_from_fn_and_map() {
        let channels = PerMode::from_fn(|m| m.channels());
        assert_eq!(channels.ft, 1);
        assert_eq!(channels.fs, 2);
        assert_eq!(channels.nf, 4);
        let doubled = channels.map(|&c| c * 2);
        assert_eq!(doubled.nf, 8);
    }

    #[test]
    fn per_mode_iter_follows_slot_order() {
        let pm = PerMode {
            ft: "a",
            fs: "b",
            nf: "c",
        };
        let collected: Vec<_> = pm.iter().map(|(m, v)| (m.short_name(), *v)).collect();
        assert_eq!(collected, vec![("FT", "a"), ("FS", "b"), ("NF", "c")]);
    }

    #[test]
    fn serde_round_trip() {
        let json = serde_json::to_string(&Mode::FailSilent).unwrap();
        let back: Mode = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Mode::FailSilent);
    }
}

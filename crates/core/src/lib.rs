//! # ftsched
//!
//! A from-scratch Rust reproduction of *"A Flexible Scheme for Scheduling
//! Fault-Tolerant Real-Time Tasks on Multiprocessors"* (M. Cirinei,
//! E. Bini, G. Lipari, A. Ferrari — IPPS 2007).
//!
//! The paper proposes a four-processor platform that is periodically
//! reconfigured between a redundant lock-step *fault-tolerant* mode, a
//! dual lock-step *fail-silent* mode and a fully parallel
//! *non-fault-tolerant* mode, and shows how to size the period and the
//! per-mode time slots with hierarchical scheduling theory so that every
//! sporadic task meets its deadlines in the mode its criticality demands.
//!
//! This facade crate re-exports the whole workspace and provides the
//! high-level [`pipeline`] that strings the pieces together:
//!
//! ```
//! use ftsched_core::prelude::*;
//!
//! // The 13-task example of the paper's Table 1, with its manual
//! // partition and O_tot = 0.05.
//! let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
//!
//! // Pick the design that minimises the bandwidth wasted in overheads
//! // (Table 2(b): P = 2.966, quanta 0.820 / 1.281 / 0.815).
//! let outcome = design_and_validate(
//!     &problem,
//!     DesignGoal::MinimizeOverheadBandwidth,
//!     &PipelineConfig::default(),
//! ).unwrap();
//!
//! assert!((outcome.solution.period - 2.966).abs() < 0.01);
//! assert!(outcome.simulation.all_deadlines_met());
//! ```
//!
//! Layering (one crate per subsystem):
//!
//! | crate | contents |
//! |-------|----------|
//! | [`ftsched_task`] | sporadic task model, modes, partitions, generators |
//! | [`ftsched_analysis`] | supply functions, FP/EDF hierarchical tests, `minQ` |
//! | [`ftsched_platform`] | the 4-core lock-step platform with fault injection |
//! | [`ftsched_sim`] | slot-based discrete-event scheduling simulator |
//! | [`ftsched_design`] | feasible-period region, quanta selection, design goals |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pipeline;

pub use pipeline::{
    design_and_validate, design_and_validate_in, design_stage, design_stage_with, validate_stage,
    PipelineConfig, PipelineOutcome,
};

/// Convenience re-exports of the most commonly used items of every layer.
pub mod prelude {
    pub use ftsched_analysis::{
        min_quantum, min_quantum_multi, Algorithm, LinearSupply, PeriodicSlotSupply, SupplyFunction,
    };
    pub use ftsched_design::{
        baseline::{compare_schemes, Scheme},
        goals::{solve, solve_all},
        partitioner::{partition_system, PartitionHeuristic},
        problem::paper_problem,
        quanta::{distribute_slack, minimum_allocation, SlackPolicy},
        region::{
            max_admissible_overhead, max_feasible_period, max_slack_ratio_period, sweep_region,
            RegionConfig,
        },
        sensitivity::{
            max_total_overhead_at_period, mode_bandwidth_margin, wcet_margin_curve,
            wcet_scaling_margin, wcet_scaling_margin_with,
        },
        AnalysisContext, DesignGoal, DesignProblem, DesignSolution, ScaledContext,
    };
    pub use ftsched_platform::{
        classify_outcome, Fault, FaultInjector, FaultModel, FaultSchedule, JobOutcome, Platform,
        PlatformConfig,
    };
    pub use ftsched_sim::{
        simulate, simulate_in, SimArena, SimulationConfig, SimulationReport, SlotSchedule,
    };
    pub use ftsched_task::{
        examples::{paper_example, paper_partition, paper_taskset, PAPER_TOTAL_OVERHEAD},
        generator::{generate_taskset, GeneratorConfig},
        Duration, Mode, ModePartition, PerMode, SystemPartition, Task, TaskBuilder, TaskId,
        TaskSet, Time,
    };

    pub use crate::pipeline::{
        design_and_validate, design_and_validate_in, design_stage, design_stage_with,
        validate_stage, PipelineConfig, PipelineOutcome,
    };
}

//! The end-to-end pipeline: design problem → slot parameters → simulated
//! validation.
//!
//! The paper's methodology stops at choosing `(P, Q_FT, Q_FS, Q_NF)`; this
//! module additionally turns the chosen design into a
//! [`ftsched_sim::SlotSchedule`] and runs the discrete-event simulator over
//! a configurable horizon (several hyperperiods by default) to confirm that
//! no deadline is missed and — if a fault schedule is supplied — that the
//! mode semantics hold (FT masks, FS silences, NF may corrupt).

use serde::{Deserialize, Serialize};

use ftsched_design::goals::solve_with;
use ftsched_design::quanta::{distribute_slack, SlackPolicy};
use ftsched_design::region::RegionConfig;
use ftsched_design::{DesignError, DesignGoal, DesignProblem, DesignSolution};
use ftsched_platform::FaultSchedule;
use ftsched_sim::{
    simulate_in, SimArena, SimError, SimulationConfig, SimulationReport, SlotSchedule,
};
use ftsched_task::PerMode;

/// Configuration of the design-and-validate pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Period-region sweep parameters.
    pub region: RegionConfig,
    /// How the residual slack is distributed before simulating.
    pub slack_policy: SlackPolicy,
    /// Simulation horizon in hyperperiods of the task set (at least 1).
    pub horizon_hyperperiods: u32,
    /// Fault schedule injected during validation (empty by default).
    pub fault_schedule: FaultSchedule,
    /// Whether the simulation keeps its full trace.
    pub record_trace: bool,
    /// Whether the simulation records every completed job's response time
    /// per task (feeds campaign response-time histograms).
    pub record_response_times: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            region: RegionConfig::paper_figure4(),
            slack_policy: SlackPolicy::KeepUnallocated,
            horizon_hyperperiods: 2,
            fault_schedule: FaultSchedule::none(),
            record_trace: false,
            record_response_times: false,
        }
    }
}

/// Everything the pipeline produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineOutcome {
    /// The chosen design (period, quanta, slack, bandwidths).
    pub solution: DesignSolution,
    /// The slot schedule the simulator executed.
    pub slots: SlotSchedule,
    /// The simulation report over the configured horizon.
    pub simulation: SimulationReport,
}

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The design stage failed (no feasible period, invalid problem, …).
    Design(DesignError),
    /// The simulation stage failed (inconsistent slot schedule, …).
    Simulation(SimError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Design(e) => write!(f, "design stage failed: {e}"),
            PipelineError::Simulation(e) => write!(f, "simulation stage failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<DesignError> for PipelineError {
    fn from(e: DesignError) -> Self {
        PipelineError::Design(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Simulation(e)
    }
}

/// Converts a design solution into the slot schedule the simulator runs.
///
/// # Errors
///
/// Propagates slot-schedule validation errors (cannot occur for a
/// consistent solution).
pub fn slots_from_solution(solution: &DesignSolution) -> Result<SlotSchedule, SimError> {
    SlotSchedule::new(
        solution.period,
        PerMode::from_fn(|m| solution.allocation.useful[m]),
        PerMode::from_fn(|m| solution.allocation.overheads[m]),
    )
}

/// The deterministic design stage of the pipeline: solve the design
/// problem for `goal`, apply the slack policy, build the slot schedule.
///
/// This half is a pure function of `(problem, goal, region, policy)` — no
/// randomness, no simulation — which is what makes it cacheable across
/// the trials of a validation campaign (only the fault draw differs per
/// trial).
///
/// # Errors
///
/// Returns a [`PipelineError`] if the design stage fails.
pub fn design_stage(
    problem: &DesignProblem,
    goal: DesignGoal,
    region: &RegionConfig,
    slack_policy: SlackPolicy,
) -> Result<(DesignSolution, SlotSchedule), PipelineError> {
    design_stage_with(
        problem,
        &problem.analysis_context()?,
        goal,
        region,
        slack_policy,
    )
}

/// [`design_stage`] over a prebuilt
/// [`AnalysisContext`](ftsched_design::AnalysisContext) of the same
/// problem, for callers (baseline comparison + design in one trial) that
/// already paid for the point-set enumeration.
///
/// # Errors
///
/// Returns a [`PipelineError`] if the design stage fails.
pub fn design_stage_with(
    problem: &DesignProblem,
    ctx: &ftsched_design::AnalysisContext,
    goal: DesignGoal,
    region: &RegionConfig,
    slack_policy: SlackPolicy,
) -> Result<(DesignSolution, SlotSchedule), PipelineError> {
    // The run count is scheduling-dependent (the campaign caches this
    // stage); the span feeds the design-vs-validate wall-clock split.
    let metrics = ftsched_obs::metrics();
    metrics.design_stage_runs.incr();
    let _span = metrics.time(ftsched_obs::Stage::Design);
    let mut solution = solve_with(problem, ctx, goal, region)?;
    solution.allocation = distribute_slack(&solution.allocation, slack_policy);
    let slots = slots_from_solution(&solution)?;
    Ok((solution, slots))
}

/// The validation stage: simulate an already-designed slot schedule over
/// the configured horizon with the configured fault schedule, reusing the
/// caller's [`SimArena`].
///
/// # Errors
///
/// Returns a [`PipelineError`] if the simulation stage fails.
pub fn validate_stage(
    problem: &DesignProblem,
    solution: &DesignSolution,
    slots: &SlotSchedule,
    config: &PipelineConfig,
    arena: &mut SimArena,
) -> Result<PipelineOutcome, PipelineError> {
    // Validation is never cached: exactly one run per accepted trial, so
    // the counter is deterministic; the span is the timing half.
    let metrics = ftsched_obs::metrics();
    metrics.validate_runs.incr();
    let _span = metrics.time(ftsched_obs::Stage::Validate);
    let hyperperiod = problem.tasks.hyperperiod();
    let horizon = hyperperiod * config.horizon_hyperperiods.max(1) as f64;
    let simulation = simulate_in(
        &problem.tasks,
        &problem.partition,
        problem.algorithm,
        slots,
        &SimulationConfig {
            horizon,
            fault_schedule: config.fault_schedule.clone(),
            record_trace: config.record_trace,
            record_response_times: config.record_response_times,
        },
        arena,
    )?;

    Ok(PipelineOutcome {
        solution: solution.clone(),
        slots: slots.clone(),
        simulation,
    })
}

/// Runs the full pipeline: solve the design problem for `goal`, apply the
/// configured slack policy, build the slot schedule and simulate it.
///
/// # Errors
///
/// Returns a [`PipelineError`] if either stage fails.
pub fn design_and_validate(
    problem: &DesignProblem,
    goal: DesignGoal,
    config: &PipelineConfig,
) -> Result<PipelineOutcome, PipelineError> {
    let mut arena = SimArena::default();
    design_and_validate_in(problem, goal, config, &mut arena)
}

/// [`design_and_validate`] with a caller-owned [`SimArena`], for hot
/// loops that run many pipelines back to back.
///
/// # Errors
///
/// Returns a [`PipelineError`] if either stage fails.
pub fn design_and_validate_in(
    problem: &DesignProblem,
    goal: DesignGoal,
    config: &PipelineConfig,
    arena: &mut SimArena,
) -> Result<PipelineOutcome, PipelineError> {
    let (solution, slots) = design_stage(problem, goal, &config.region, config.slack_policy)?;
    validate_stage(problem, &solution, &slots, config, arena)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftsched_analysis::Algorithm;
    use ftsched_design::problem::paper_problem;
    use ftsched_task::Mode;

    #[test]
    fn pipeline_reproduces_table_2b_and_validates_it() {
        let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
        let outcome = design_and_validate(
            &problem,
            DesignGoal::MinimizeOverheadBandwidth,
            &PipelineConfig::default(),
        )
        .unwrap();
        assert!((outcome.solution.period - 2.966).abs() < 0.01);
        assert!(outcome.simulation.all_deadlines_met());
        assert!(outcome.simulation.integrity_preserved());
        assert!((outcome.slots.period().as_units() - outcome.solution.period).abs() < 1e-6);
    }

    #[test]
    fn pipeline_with_slack_distribution_still_meets_deadlines() {
        let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
        for policy in [
            SlackPolicy::Proportional,
            SlackPolicy::Even,
            SlackPolicy::AllTo(Mode::NonFaultTolerant),
        ] {
            let config = PipelineConfig {
                slack_policy: policy,
                ..PipelineConfig::default()
            };
            let outcome =
                design_and_validate(&problem, DesignGoal::MaximizeSlackBandwidth, &config).unwrap();
            assert!(
                outcome.simulation.all_deadlines_met(),
                "{policy:?}: {} misses",
                outcome.simulation.deadline_misses
            );
        }
    }

    #[test]
    fn pipeline_surfaces_design_failures() {
        let problem = paper_problem(Algorithm::EarliestDeadlineFirst)
            .with_overheads(PerMode::splat(0.1))
            .unwrap();
        let err = design_and_validate(
            &problem,
            DesignGoal::MinimizeOverheadBandwidth,
            &PipelineConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            PipelineError::Design(DesignError::NoFeasiblePeriod { .. })
        ));
        assert!(err.to_string().contains("design stage"));
    }

    #[test]
    fn rm_pipeline_also_validates() {
        let problem = paper_problem(Algorithm::RateMonotonic);
        let outcome = design_and_validate(
            &problem,
            DesignGoal::MinimizeOverheadBandwidth,
            &PipelineConfig::default(),
        )
        .unwrap();
        // With O_tot = 0.05 the RM-feasible region shrinks below the
        // zero-overhead bound of 2.381 (Figure 4, point 2).
        assert!(outcome.solution.period < 2.381);
        assert!(outcome.solution.period > 1.0);
        assert!(outcome.simulation.all_deadlines_met());
    }
}

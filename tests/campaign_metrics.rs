//! End-to-end check of the observability layer's determinism contract:
//! the *deterministic counters* ([`RunCounters`]) extracted from a
//! campaign run are byte-identical across worker counts and across
//! shard + merge, while the campaign report itself stays byte-identical
//! to its golden file — collecting metrics never perturbs a report.
//!
//! The `ftsched_obs` registry is process-global, so this file contains
//! exactly **one** `#[test]`: a second concurrent test would interleave
//! its events into our snapshot deltas. Everything below works on
//! `snapshot().since(baseline)` deltas for the same reason.

use ftsched_campaign::prelude::*;
use ftsched_campaign::RunCounters;

fn root(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn exec(threads: usize, block_size: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        block_size,
        progress: false,
        heartbeat: false,
        design_cache: true,
    }
}

/// Runs `run` and returns its report plus the deterministic-counter
/// delta it produced in the global registry.
fn counted(run: impl FnOnce() -> CampaignReport) -> (CampaignReport, RunCounters) {
    let metrics = ftsched_obs::metrics();
    let baseline = metrics.snapshot();
    let report = run();
    let delta = metrics.snapshot().since(&baseline);
    (report, RunCounters::from_snapshot(&delta))
}

#[test]
fn deterministic_counters_match_across_thread_counts_and_shard_merge() {
    let path = root("examples/grid_sweep.json");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec: CampaignSpec = serde_json::from_str(&text).expect("grid_sweep spec parses");
    spec.validate().unwrap();
    let golden = std::fs::read_to_string(root("tests/golden/grid_sweep.json")).unwrap();

    let (sequential, seq_counters) = counted(|| run_campaign(&spec, &exec(1, 32)).unwrap());
    let (threaded, thr_counters) = counted(|| run_campaign(&spec, &exec(4, 8)).unwrap());

    // Two shards, each its own counter delta — exactly what two separate
    // `ftsched run --shard i/2 --metrics-json` processes would write.
    let shard = |index| ShardInfo { index, count: 2 };
    let (part0, c0) = counted(|| run_campaign_shard(&spec, &exec(2, 16), Some(shard(0))).unwrap());
    let (part1, c1) = counted(|| run_campaign_shard(&spec, &exec(2, 16), Some(shard(1))).unwrap());
    let merged = merge_reports(vec![part0, part1]).unwrap();
    let shard_counters = c0.merged(&c1);

    // The deterministic half is a pure function of the spec: identical
    // at any worker count, and additive across shards.
    assert_eq!(seq_counters, thr_counters, "1-thread vs 4-thread counters");
    assert_eq!(
        seq_counters, shard_counters,
        "unsharded vs shard-merged counters"
    );

    // Sanity on the event algebra itself: every trial is accounted for
    // by exactly one terminal status, and the simulator ran once per
    // accepted trial (caches memoise design stages, never simulation).
    let c = &seq_counters;
    let grid_trials = (spec.scenarios().len() * spec.trials_per_scenario) as u64;
    assert_eq!(c.trials_started, grid_trials);
    assert_eq!(c.trials_completed, c.trials_started);
    assert_eq!(
        c.trials_accepted
            + c.trials_generation_failed
            + c.trials_partition_failed
            + c.trials_design_rejected
            + c.trials_simulation_failed,
        c.trials_completed
    );
    assert_eq!(c.sim_runs, c.trials_accepted);
    assert_eq!(c.validate_runs, c.trials_accepted);

    // Observability never touches report bytes: all three runs still
    // reproduce the golden exactly.
    assert_eq!(sequential.to_json(), golden, "1-thread report vs golden");
    assert_eq!(threaded.to_json(), golden, "4-thread report vs golden");
    assert_eq!(merged.to_json(), golden, "shard-merged report vs golden");
}

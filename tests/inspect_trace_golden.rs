//! Golden-file pin for `ftsched inspect --trace-json`: the full execution
//! trace of one frozen-seed fault-injection trial must stay
//! **byte-identical** across engine rewrites. The golden was generated
//! with the slot-stepping engine before the event-driven core landed, so
//! this test proves the rewrite is observationally invisible all the way
//! down to the serialised slice list and per-job fault classification —
//! not just at the report-counter level.
//!
//! If this fails, the simulator's observable behaviour changed for a
//! published spec. Regenerate the golden only with a deliberate decision
//! that the new trace is the correct one:
//!
//! ```text
//! ftsched inspect examples/fault_injection.json --scenario 0 --trial 0 \
//!     --trace-json tests/golden/inspect_trace.json
//! ```

use ftsched_campaign::prelude::*;

fn root(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn inspect_trace_json_is_byte_identical_to_golden() {
    let spec_path = root("examples/fault_injection.json");
    let text =
        std::fs::read_to_string(&spec_path).unwrap_or_else(|e| panic!("read {spec_path}: {e}"));
    let spec: CampaignSpec = serde_json::from_str(&text).expect("spec parses");
    spec.validate().unwrap();

    let scenarios = spec.scenarios();
    let scenario = scenarios.first().expect("spec has at least one scenario");
    let (outcome, full) = run_trial_traced(&spec, scenario, 0);
    assert_eq!(
        outcome.status,
        TrialStatus::Accepted,
        "the frozen trial no longer designs/validates: {outcome:?}"
    );

    let full = full.expect("accepted trials carry the full pipeline outcome");
    let trace = full
        .simulation
        .trace
        .as_ref()
        .expect("traced runs record the execution trace");
    // Exactly the bytes `cmd_inspect` writes for `--trace-json`.
    let rendered = serde_json::to_string_pretty(trace).expect("traces always serialise");

    let golden_path = root("tests/golden/inspect_trace.json");
    let golden =
        std::fs::read_to_string(&golden_path).unwrap_or_else(|e| panic!("read {golden_path}: {e}"));
    assert_eq!(
        rendered, golden,
        "execution trace diverged from the pre-event-engine golden"
    );
}

//! Backward compatibility against the pre-axis engine, enforced with
//! golden files: every spec in `examples/` that predates the widened
//! scenario grid must parse under the widened `CampaignSpec` and produce
//! JSON / CSV / table reports **byte-identical** to the pre-PR binary's
//! output (checked into `tests/golden/`, generated before the axes
//! landed).
//!
//! If one of these tests fails, the report format changed for existing
//! specs — that is a breaking change to every published campaign, not a
//! formatting detail. Regenerate the goldens only with a deliberate
//! format-version bump.

use ftsched_campaign::prelude::*;

fn root(path: &str) -> String {
    format!("{}/{path}", env!("CARGO_MANIFEST_DIR"))
}

fn golden(name: &str, extension: &str) -> String {
    let path = root(&format!("tests/golden/{name}.{extension}"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Loads `examples/<name>.json`, runs it, and asserts the JSON / CSV /
/// table output is byte-identical to the goldens generated with the
/// `era` binary (plus the per-task response CSV when the spec collects
/// histograms). The shared core of every golden check, so the protocol
/// cannot drift between spec eras.
fn check_against_goldens(name: &str, era: &str) -> CampaignReport {
    let path = root(&format!("examples/{name}.json"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec: CampaignSpec = serde_json::from_str(&text)
        .unwrap_or_else(|e| panic!("{era} spec `{name}` no longer parses: {e}"));
    spec.validate().unwrap();

    let report = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 2,
            block_size: 32,
            progress: false,
            heartbeat: false,
            design_cache: true,
        },
    )
    .unwrap();
    assert_eq!(
        report.to_json(),
        golden(name, "json"),
        "JSON report for `{name}` diverged from the {era} binary"
    );
    assert_eq!(
        report.to_csv(),
        golden(name, "csv"),
        "CSV report for `{name}` diverged from the {era} binary"
    );
    // The golden table file is the binary's stdout: the table plus the
    // trailing newline `println!` appends.
    assert_eq!(
        format!("{}\n", report.render_table()),
        golden(name, "table.txt"),
        "table for `{name}` diverged from the {era} binary"
    );
    if let Some(response_csv) = report.response_csv() {
        assert_eq!(
            response_csv,
            golden(name, "response.csv"),
            "response CSV for `{name}` diverged from the {era} binary"
        );
    }
    report
}

/// Golden check for the original, pre-axis example specs: they must stay
/// on the single-value fallbacks forever.
fn check_example(name: &str) {
    let report = check_against_goldens(name, "pre-axis");
    let spec = &report.spec;
    assert!(!spec.has_overhead_axis() && !spec.has_heuristic_axis());
    assert!(spec.response_histogram.is_none());
}

/// Golden check for specs that postdate the widened axes (so they may
/// use them) while predating the latency-curve metric: a spec without
/// the metric must never grow the new fields.
fn check_post_axis_example(name: &str) {
    let report = check_against_goldens(name, "pre-latency");
    assert!(report.spec.latency_curves.is_none());
    assert!(report.latency_csv().is_none());
    assert!(!report.to_json().contains("latency"));
}

#[test]
fn acceptance_ratio_example_is_byte_identical_to_pre_axis_binary() {
    check_example("acceptance_ratio");
}

#[test]
fn baseline_comparison_example_is_byte_identical_to_pre_axis_binary() {
    check_example("baseline_comparison");
}

#[test]
fn fault_injection_example_is_byte_identical_to_pre_axis_binary() {
    check_example("fault_injection");
}

#[test]
fn grid_sweep_example_is_byte_identical_to_pre_latency_binary() {
    check_post_axis_example("grid_sweep");
}

#[test]
fn golden_reports_parse_under_the_widened_schema() {
    // A report written by the pre-axis binary still deserialises (the
    // extension fields default), and re-serialising it reproduces the
    // file byte for byte — the round trip is lossless in both formats.
    for name in [
        "acceptance_ratio",
        "baseline_comparison",
        "fault_injection",
        "grid_sweep",
    ] {
        let text = golden(name, "json");
        let report: CampaignReport = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("golden `{name}` no longer parses: {e}"));
        assert!(report.is_complete());
        assert_eq!(report.to_json(), text, "round trip of golden `{name}`");
    }
}

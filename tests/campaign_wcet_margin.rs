//! End-to-end tests of the `wcet_margin` campaign metric: margins are
//! computed through the shared analysis context (design cache for the
//! paper workload, the trial's own context for synthetic ones), aggregate
//! exactly across threads and shards, and leave margin-free campaigns
//! byte-identical to the pre-metric engine.

use ftsched_campaign::prelude::*;
use ftsched_campaign::{merge_reports, run_campaign, ShardInfo};
use ftsched_design::problem::paper_problem;
use ftsched_design::sensitivity::wcet_scaling_margin;

fn margin_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        kind: TrialKind::DesignAndValidate,
        faults: FaultModel::Poisson {
            mean_interarrival: 10.0,
            fault_duration: 0.25,
        },
        horizon_hyperperiods: 1,
        trials_per_scenario: 6,
        wcet_margin: Some(WcetMarginSpec { tolerance: 1e-3 }),
        ..CampaignSpec::base(name)
    }
}

#[test]
fn paper_campaign_margin_matches_the_direct_sensitivity_search() {
    let spec = CampaignSpec {
        workload: WorkloadSpec::Paper,
        utilizations: vec![],
        algorithms: vec![Algorithm::EarliestDeadlineFirst],
        // Maximising slack keeps the period inside the region, where the
        // margin is meaningfully above 1 (the overhead-minimal design
        // sits on the boundary with no WCET slack at all).
        goal: DesignGoal::MaximizeSlackBandwidth,
        ..margin_spec("paper-margin")
    };
    let report = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let stats = &report.scenarios[0].stats;
    assert_eq!(stats.accepted, 6);
    // Every accepted trial recorded the (deterministic) margin once.
    assert_eq!(stats.sim.wcet_margin.runs, stats.sim.runs);
    // The campaign's margin is the sensitivity module's margin at the
    // chosen design period.
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
    let expected = wcet_scaling_margin(&problem, stats.sim.mean_period(), 1e-3).unwrap();
    let mean = stats.sim.wcet_margin.mean();
    assert!(
        (mean - expected).abs() < 1e-5,
        "campaign mean {mean} vs direct {expected}"
    );
    assert!(mean > 1.0, "the paper design must keep real slack");
    // Median of identical per-trial values: the (conservative) bin edge
    // just above the mean.
    let p50 = stats.sim.wcet_margin.p50();
    assert!((mean..=mean + ftsched_campaign::WcetMarginStats::BIN_WIDTH).contains(&p50));
}

#[test]
fn margin_campaigns_shard_merge_and_round_trip_byte_identically() {
    let spec = CampaignSpec {
        algorithms: vec![Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic],
        utilizations: vec![0.8, 1.6],
        ..margin_spec("synthetic-margin")
    };
    let sequential = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 1,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let parallel = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 4,
            block_size: 2,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.to_csv(), parallel.to_csv());

    // Shard, then fold back: byte-identical to the unsharded run.
    let parts: Vec<_> = (0..3)
        .map(|i| {
            ftsched_campaign::run_campaign_shard(
                &spec,
                &ExecutorConfig::default(),
                Some(ShardInfo { index: i, count: 3 }),
            )
            .unwrap()
        })
        .collect();
    let merged = merge_reports(parts).unwrap();
    assert_eq!(merged.to_json(), sequential.to_json());

    // JSON round-trips with the margin aggregate intact.
    let back: CampaignReport = serde_json::from_str(&sequential.to_json()).unwrap();
    assert_eq!(back, sequential);

    // Accepted scenarios carry margins; the CSV exposes the columns.
    let accepted_margins = sequential
        .scenarios
        .iter()
        .filter(|s| s.stats.sim.runs > 0)
        .count();
    assert!(accepted_margins > 0, "no scenario accepted anything");
    for s in &sequential.scenarios {
        assert_eq!(s.stats.sim.wcet_margin.runs, s.stats.sim.runs);
        if s.stats.sim.wcet_margin.runs > 0 {
            assert!(s.stats.sim.wcet_margin.mean() >= 1.0);
        }
    }
    let csv = sequential.to_csv();
    let header = csv.lines().next().unwrap();
    assert!(header.contains("wcet_margin_mean,wcet_margin_p50"));

    // The design cache must not change a single byte.
    let uncached = run_campaign(
        &spec,
        &ExecutorConfig {
            design_cache: false,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    assert_eq!(uncached.to_json(), sequential.to_json());
}

#[test]
fn margin_free_campaigns_never_mention_the_metric() {
    let spec = CampaignSpec {
        wcet_margin: None,
        ..margin_spec("no-margin")
    };
    let report = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let json = report.to_json();
    assert!(
        !json.contains("wcet_margin"),
        "margin-free reports must stay byte-identical to the pre-metric engine"
    );
    assert!(!report.to_csv().contains("wcet_margin"));
}

//! Property-based tests linking the design theory to the simulator: for
//! randomly generated workloads, any design the theory declares feasible
//! must simulate without deadline misses, and the fault semantics of the
//! three modes must hold under arbitrary single-transient-fault schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_design::problem::DesignProblem;
use ftsched_design::quanta::minimum_allocation;

/// Generates a problem from a seed; returns `None` when the workload does
/// not partition (too heavy), which the properties simply skip.
fn problem_from_seed(seed: u64, utilization: f64) -> Option<DesignProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = GeneratorConfig::paper_like(8, utilization);
    config.max_task_utilization = 0.5;
    let tasks = generate_taskset(&mut rng, &config).ok()?;
    let partition = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing).ok()?;
    DesignProblem::with_total_overhead(tasks, partition, 0.04, Algorithm::EarliestDeadlineFirst)
        .ok()
}

fn slots_for(problem: &DesignProblem, period: f64) -> Option<SlotSchedule> {
    let alloc = minimum_allocation(problem, period).ok()?;
    SlotSchedule::new(
        period,
        PerMode::from_fn(|m| alloc.useful[m]),
        PerMode::from_fn(|m| alloc.overheads[m]),
    )
    .ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theory → practice: a period inside the feasible region simulates
    /// with zero deadline misses (fault-free).
    #[test]
    fn feasible_designs_never_miss_deadlines(seed in 0u64..5000, period_tenths in 4u32..20) {
        let Some(problem) = problem_from_seed(seed, 1.0) else { return Ok(()) };
        let period = period_tenths as f64 / 10.0;
        let Some(slots) = slots_for(&problem, period) else { return Ok(()) };
        let horizon = problem.tasks.hyperperiod().min(400.0);
        let report = simulate(
            &problem.tasks,
            &problem.partition,
            problem.algorithm,
            &slots,
            &SimulationConfig { horizon, fault_schedule: FaultSchedule::none(), record_trace: false, record_response_times: false },
        ).unwrap();
        prop_assert!(
            report.all_deadlines_met(),
            "seed {seed}, P={period}: {} misses over horizon {horizon}",
            report.deadline_misses
        );
    }

    /// Fault semantics: under any single-transient-fault schedule, FT and
    /// FS jobs never commit wrong results; only NF jobs can.
    #[test]
    fn protected_modes_never_commit_wrong_results(
        seed in 0u64..5000,
        fault_seed in 0u64..5000,
        mean_gap_tenths in 20u32..200,
    ) {
        let Some(problem) = problem_from_seed(seed, 1.0) else { return Ok(()) };
        let Some(slots) = slots_for(&problem, 1.0) else { return Ok(()) };
        let horizon = problem.tasks.hyperperiod().min(300.0);
        let mut rng = StdRng::seed_from_u64(fault_seed);
        let faults = FaultSchedule::poisson(
            &mut rng,
            Time::from_units(horizon),
            Duration::from_units(mean_gap_tenths as f64 / 10.0),
            Duration::from_units(0.3),
        );
        let report = simulate(
            &problem.tasks,
            &problem.partition,
            problem.algorithm,
            &slots,
            &SimulationConfig { horizon, fault_schedule: faults, record_trace: false, record_response_times: false },
        ).unwrap();
        prop_assert_eq!(report.outcomes[Mode::FaultTolerant].wrong_result, 0);
        prop_assert_eq!(report.outcomes[Mode::FailSilent].wrong_result, 0);
        prop_assert_eq!(report.outcomes[Mode::FaultTolerant].silenced_lost, 0);
        // Every classified job is accounted for exactly once.
        prop_assert_eq!(report.total_outcomes().total(), report.released_jobs);
    }

    /// Faults never cause deadline misses by themselves (the paper's fault
    /// model does not re-execute lost work, so timing is unaffected).
    #[test]
    fn faults_do_not_perturb_timing(seed in 0u64..5000, fault_seed in 0u64..5000) {
        let Some(problem) = problem_from_seed(seed, 0.9) else { return Ok(()) };
        let Some(slots) = slots_for(&problem, 1.2) else { return Ok(()) };
        let horizon = problem.tasks.hyperperiod().min(200.0);
        let mut rng = StdRng::seed_from_u64(fault_seed);
        let faults = FaultSchedule::poisson(
            &mut rng,
            Time::from_units(horizon),
            Duration::from_units(5.0),
            Duration::from_units(0.2),
        );
        let clean = simulate(
            &problem.tasks, &problem.partition, problem.algorithm, &slots,
            &SimulationConfig { horizon, fault_schedule: FaultSchedule::none(), record_trace: false, record_response_times: false },
        ).unwrap();
        let faulty = simulate(
            &problem.tasks, &problem.partition, problem.algorithm, &slots,
            &SimulationConfig { horizon, fault_schedule: faults, record_trace: false, record_response_times: false },
        ).unwrap();
        prop_assert_eq!(clean.deadline_misses, faulty.deadline_misses);
        prop_assert_eq!(clean.released_jobs, faulty.released_jobs);
        prop_assert_eq!(clean.completed_jobs, faulty.completed_jobs);
    }

    /// The slot schedule's empirical supply dominates the linear bound for
    /// arbitrary quanta/periods (the soundness of using Z' in the design).
    #[test]
    fn slot_supply_soundness(
        q_ft in 1u32..20, q_fs in 1u32..20, q_nf in 1u32..20,
        slack_tenths in 0u32..10, window_tenths in 1u32..100,
    ) {
        let quanta = PerMode {
            ft: q_ft as f64 / 10.0,
            fs: q_fs as f64 / 10.0,
            nf: q_nf as f64 / 10.0,
        };
        let period = quanta.total() + slack_tenths as f64 / 10.0;
        let slots = SlotSchedule::new(period, quanta, PerMode::splat(0.0)).unwrap();
        let window = Duration::from_units(window_tenths as f64 / 10.0);
        for mode in Mode::ALL {
            let supply = LinearSupply::from_slot(slots.useful_quantum(mode).as_units(), period).unwrap();
            let empirical = slots.empirical_min_supply(mode, window, 31).as_units();
            prop_assert!(
                empirical + 1e-6 >= supply.supply(window.as_units()),
                "{mode}: empirical {empirical:.4} < bound {:.4}",
                supply.supply(window.as_units())
            );
        }
    }
}

//! End-to-end tests of the `latency_curves` campaign metric: per-scenario
//! deadline-relative latency distributions aggregate exactly across
//! threads and shards, the pooled per-utilisation curve is derived
//! deterministically in the JSON report, and curve-free campaigns stay
//! byte-identical to the pre-metric engine.

use ftsched_campaign::prelude::*;
use ftsched_campaign::{merge_reports, run_campaign, ShardInfo};

fn latency_spec(name: &str) -> CampaignSpec {
    CampaignSpec {
        kind: TrialKind::DesignAndValidate,
        faults: FaultModel::Poisson {
            mean_interarrival: 10.0,
            fault_duration: 0.25,
        },
        horizon_hyperperiods: 1,
        trials_per_scenario: 6,
        latency_curves: Some(LatencyCurveSpec {
            bin_width: 0.0625,
            bins: 48,
        }),
        ..CampaignSpec::base(name)
    }
}

#[test]
fn paper_campaign_curves_pool_all_completed_jobs_inside_the_deadline() {
    let spec = CampaignSpec {
        workload: WorkloadSpec::Paper,
        utilizations: vec![],
        algorithms: vec![Algorithm::EarliestDeadlineFirst],
        ..latency_spec("paper-latency")
    };
    let report = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let stats = &report.scenarios[0].stats;
    assert_eq!(stats.accepted, 6);
    let curve = stats.sim.latency.as_ref().expect("curves were requested");
    // Every completed job of every accepted trial contributes exactly one
    // observation.
    assert_eq!(curve.samples(), stats.sim.completed_jobs);
    // A validated design never misses a deadline, so every normalised
    // response time is at most 1.0: nothing lands past the deadline's
    // bin. The quantile is the conservative *upper* bin edge, so an
    // exactly-at-deadline completion may report one bin width above 1.0.
    assert_eq!(stats.sim.deadline_misses, 0);
    let bin_width = spec.latency_curves.unwrap().bin_width;
    assert!(curve.p99() <= 1.0 + bin_width, "p99 {}", curve.p99());
    assert_eq!(curve.histogram.overflow, 0);
    assert!(curve.p50() > 0.0 && curve.p50() <= curve.p95());

    // The pooled JSON curve degenerates to the single paper point.
    let pooled = report.pooled_latency_curve().unwrap();
    assert_eq!(pooled.len(), 1);
    assert_eq!(pooled[0].utilization, None);
    assert_eq!(pooled[0].samples, curve.samples());
    assert_eq!(pooled[0].lat_p50, curve.p50());
}

#[test]
fn latency_campaigns_shard_merge_and_round_trip_byte_identically() {
    let spec = CampaignSpec {
        algorithms: vec![Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic],
        utilizations: vec![0.8, 1.6],
        overheads: vec![0.02, 0.08],
        ..latency_spec("synthetic-latency")
    };
    let sequential = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 1,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    let parallel = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 4,
            block_size: 2,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    assert_eq!(sequential.to_json(), parallel.to_json());
    assert_eq!(sequential.to_csv(), parallel.to_csv());
    assert_eq!(sequential.latency_csv(), parallel.latency_csv());

    // Shard, then fold back: byte-identical to the unsharded run, down
    // to the derived pooled curve and the long-format CSV.
    let parts: Vec<_> = (0..3)
        .map(|i| {
            ftsched_campaign::run_campaign_shard(
                &spec,
                &ExecutorConfig::default(),
                Some(ShardInfo { index: i, count: 3 }),
            )
            .unwrap()
        })
        .collect();
    let merged = merge_reports(parts).unwrap();
    assert_eq!(merged.to_json(), sequential.to_json());
    assert_eq!(merged.latency_csv(), sequential.latency_csv());

    // JSON round-trips with the per-scenario curves intact (the pooled
    // curve is derived, so re-serialising reproduces it too).
    let json = sequential.to_json();
    assert!(json.contains("\"latency\""));
    assert!(json.contains("\"latency_curve\""));
    let back: CampaignReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, sequential);
    assert_eq!(back.to_json(), json);

    // The wide CSV exposes the quantile columns; the long-format CSV has
    // one row per scenario that accepted anything.
    let header = sequential.to_csv().lines().next().unwrap().to_string();
    assert!(header.contains("lat_p50,lat_p95,lat_p99"));
    let latency_csv = sequential.latency_csv().unwrap();
    let rows = latency_csv.lines().count() - 1;
    let curved = sequential
        .scenarios
        .iter()
        .filter(|s| s.stats.sim.latency.is_some())
        .count();
    assert!(curved > 0, "no scenario accepted anything");
    assert_eq!(rows, curved);
    assert!(latency_csv.starts_with("scenario,algorithm,utilization,overhead,samples,"));

    // The pooled curve has one point per utilisation, each the exact
    // merge of that utilisation's scenario curves.
    let pooled = sequential.pooled_latency_curve().unwrap();
    assert_eq!(pooled.len(), 2);
    assert_eq!(pooled[0].utilization, Some(0.8));
    assert_eq!(pooled[1].utilization, Some(1.6));
    for (point, utilization) in pooled.iter().zip([0.8, 1.6]) {
        let samples: u64 = sequential
            .scenarios
            .iter()
            .filter(|s| s.utilization == Some(utilization))
            .filter_map(|s| s.stats.sim.latency.as_ref())
            .map(|c| c.samples())
            .sum();
        assert_eq!(point.samples, samples);
    }

    // The design cache must not change a single byte.
    let uncached = run_campaign(
        &spec,
        &ExecutorConfig {
            design_cache: false,
            ..ExecutorConfig::default()
        },
    )
    .unwrap();
    assert_eq!(uncached.to_json(), sequential.to_json());
}

#[test]
fn curve_free_campaigns_never_mention_the_metric() {
    let spec = CampaignSpec {
        latency_curves: None,
        ..latency_spec("bare-metrics")
    };
    let report = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let json = report.to_json();
    assert!(
        !json.contains("latency"),
        "curve-free reports must stay byte-identical to the pre-metric engine"
    );
    assert!(!report.to_csv().contains("lat_p50"));
    assert!(report.latency_csv().is_none());
    assert!(report.pooled_latency_curve().is_none());
}

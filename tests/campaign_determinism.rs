//! The campaign engine's determinism contract, enforced end to end:
//!
//! 1. a fixed-seed campaign produces **byte-identical** aggregated
//!    reports (JSON and CSV) whatever the worker count or block size;
//! 2. every trial is a pure function of its grid coordinates — the seed
//!    recorded per trial reproduces the exact [`PipelineOutcome`];
//! 3. the campaign report is exactly the in-order fold of those per-trial
//!    outcomes (no hidden state in the executor).

use ftsched_campaign::prelude::*;
use ftsched_campaign::stats::ScenarioStats;
use ftsched_campaign::trial::TrialStatus;

/// A small but fully featured campaign: synthetic workloads, two paired
/// algorithm columns, Poisson fault injection, full design-and-validate
/// trials.
fn campaign() -> CampaignSpec {
    CampaignSpec {
        master_seed: 424242,
        trials_per_scenario: 10,
        workload: WorkloadSpec::Synthetic {
            task_count: 8,
            max_task_utilization: 0.5,
            periods: PeriodDistribution::table1_like(),
            mode_mix: ModeMix::paper_like(),
            period_granularity: None,
        },
        algorithms: vec![Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic],
        utilizations: vec![0.9, 1.4],
        faults: FaultModel::Poisson {
            mean_interarrival: 10.0,
            fault_duration: 0.25,
        },
        horizon_hyperperiods: 1,
        kind: TrialKind::DesignAndValidate,
        compare_baselines: true,
        region_samples: Some(200),
        region_refine_iterations: Some(10),
        ..CampaignSpec::base("determinism-proof")
    }
}

#[test]
fn reports_are_byte_identical_across_thread_and_block_counts() {
    let spec = campaign();
    let reference = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 1,
            block_size: 32,
            progress: false,
            heartbeat: false,
            design_cache: true,
        },
    )
    .unwrap();
    let reference_json = reference.to_json();
    let reference_csv = reference.to_csv();
    assert_eq!(reference.total_trials(), 40);

    for (threads, block_size) in [(4, 32), (8, 3), (2, 1), (3, 7)] {
        let report = run_campaign(
            &spec,
            &ExecutorConfig {
                threads,
                block_size,
                progress: false,
                heartbeat: false,
                design_cache: true,
            },
        )
        .unwrap();
        assert_eq!(
            report.to_json(),
            reference_json,
            "JSON report changed with threads={threads}, block_size={block_size}"
        );
        assert_eq!(
            report.to_csv(),
            reference_csv,
            "CSV report changed with threads={threads}, block_size={block_size}"
        );
    }
}

#[test]
fn per_trial_seeds_reproduce_individual_pipeline_outcomes() {
    let spec = campaign();
    let scenarios = spec.scenarios();

    let mut accepted_with_outcome = 0;
    for scenario in &scenarios {
        for trial in 0..spec.trials_per_scenario {
            let (first, first_outcome) = run_trial_full(&spec, scenario, trial);
            let (second, second_outcome) = run_trial_full(&spec, scenario, trial);
            // The recorded seed is the advertised derivation...
            assert_eq!(
                first.seed,
                trial_seed(spec.master_seed, scenario.workload_point, trial)
            );
            // ...and re-running the coordinates reproduces everything,
            // including the full pipeline outcome (design solution, slot
            // schedule and simulation report).
            assert_eq!(first, second);
            assert_eq!(first_outcome, second_outcome);
            if first.status == TrialStatus::Accepted {
                let outcome = first_outcome.expect("accepted validation trials carry outcomes");
                assert!(outcome.simulation.released_jobs > 0);
                accepted_with_outcome += 1;
            }
        }
    }
    assert!(
        accepted_with_outcome > 0,
        "the campaign must accept some trials"
    );
}

#[test]
fn campaign_report_is_the_fold_of_its_trials() {
    let spec = campaign();
    let report = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 4,
            block_size: 8,
            progress: false,
            heartbeat: false,
            design_cache: true,
        },
    )
    .unwrap();

    for scenario in &spec.scenarios() {
        let mut expected = ScenarioStats::default();
        for trial in 0..spec.trials_per_scenario {
            expected.observe(&run_trial(&spec, scenario, trial));
        }
        assert_eq!(
            report.scenarios[scenario.index].stats, expected,
            "scenario {} diverged from its sequential fold",
            scenario.index
        );
    }
}

#[test]
fn paired_algorithm_columns_share_workloads() {
    let spec = campaign();
    let scenarios = spec.scenarios();
    let points = scenarios.len() / spec.algorithms.len();
    for p in 0..points {
        let edf = &scenarios[p];
        let rm = &scenarios[points + p];
        assert_eq!(edf.workload_point, rm.workload_point);
        for trial in 0..spec.trials_per_scenario {
            let edf_outcome = run_trial(&spec, edf, trial);
            let rm_outcome = run_trial(&spec, rm, trial);
            // Identical seeds: the same task set and fault draws, judged
            // under two schedulers.
            assert_eq!(edf_outcome.seed, rm_outcome.seed);
            // EDF dominance of the hierarchical tests: anything RM
            // accepts on a workload, EDF accepts too.
            if rm_outcome.status == TrialStatus::Accepted {
                assert_eq!(
                    edf_outcome.status,
                    TrialStatus::Accepted,
                    "EDF rejected a workload RM accepted (point {p}, trial {trial})"
                );
            }
        }
    }
}

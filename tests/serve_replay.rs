//! The admission-service replay contract: re-answering
//! `examples/serve_requests.jsonl` reproduces the checked-in golden
//! transcript byte for byte, at any worker count, with or without the
//! caches.

use std::path::Path;

use ftsched::serve::{replay, AdmissionEngine, EngineConfig};

fn repo_file(relative: &str) -> String {
    std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join(relative))
        .unwrap_or_else(|e| panic!("cannot read {relative}: {e}"))
}

fn transcript(log: &str, config: EngineConfig, batch_size: usize) -> String {
    let engine = AdmissionEngine::new(config);
    let mut out = Vec::new();
    let stats = replay(&engine, log, &mut out, batch_size).unwrap();
    assert_eq!(stats.requests, 9);
    assert_eq!(stats.responses, 9);
    String::from_utf8(out).unwrap()
}

// One test body covers every configuration: the worker-count env var
// and the obs cache counters are process-global, so the sweep and the
// summary accounting must stay sequential.
#[test]
fn replay_reproduces_the_golden_transcript_at_any_thread_count() {
    let log = repo_file("examples/serve_requests.jsonl");
    let golden = repo_file("tests/golden/serve_transcript.jsonl");

    let saved = std::env::var_os("RAYON_NUM_THREADS");
    for threads in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        for batch_size in [1, 3, 32] {
            assert_eq!(
                transcript(&log, EngineConfig::default(), batch_size),
                golden,
                "transcript diverged at {threads} threads, batch size {batch_size}"
            );
        }
        assert_eq!(
            transcript(
                &log,
                EngineConfig {
                    cache: false,
                    ..EngineConfig::default()
                },
                32
            ),
            golden,
            "caches must never change what a response contains ({threads} threads)"
        );
    }
    match saved {
        Some(value) => std::env::set_var("RAYON_NUM_THREADS", value),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }

    // Batch size 1 makes the cache traffic deterministic: request 4
    // repeats request 1's decision (one admission hit), requests 2 and
    // 3 reuse request 1's platform context (two context hits), and the
    // ±0.0 pair (requests 6 and 7) miss separately — a canonicalising
    // key would have served request 6's `overhead_bandwidth: 0` for
    // request 7's `-0`.
    let engine = AdmissionEngine::new(EngineConfig::default());
    let mut out = Vec::new();
    replay(&engine, &log, &mut out, 1).unwrap();
    let summary = engine.summary();
    assert_eq!(summary.requests, 9);
    assert_eq!(summary.admitted, 6);
    assert_eq!(summary.rejected, 1);
    assert_eq!(summary.errors, 2);
    assert_eq!(summary.admission_cache_hits, 1);
    assert_eq!(summary.admission_cache_misses, 7);
    assert_eq!(summary.context_cache_hits, 2);
    assert_eq!(summary.context_cache_misses, 5);
    // The malformed line is answered without a decision, so only the
    // 8 decided requests record a latency.
    assert_eq!(summary.latency_samples, 8);
    assert!(summary.latency_p50_us <= summary.latency_p95_us);
    assert!(summary.latency_p95_us <= summary.latency_p99_us);
}

//! Integration tests tying the analysis to the simulator: designs declared
//! feasible by the closed-form theory must run without deadline misses,
//! designs that starve a mode must visibly fail, and the simulated supply
//! must dominate the analytical lower bound.

use ftsched_core::prelude::*;
use ftsched_design::quanta::minimum_allocation;

fn table2b_slots() -> SlotSchedule {
    SlotSchedule::new(
        2.966,
        PerMode {
            ft: 0.820,
            fs: 1.281,
            nf: 0.815,
        },
        PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0),
    )
    .unwrap()
}

#[test]
fn table2b_design_meets_every_deadline_over_many_hyperperiods() {
    let (tasks, partition) = paper_example();
    let report = simulate(
        &tasks,
        &partition,
        Algorithm::EarliestDeadlineFirst,
        &table2b_slots(),
        &SimulationConfig::fault_free(600.0),
    )
    .unwrap();
    assert!(report.released_jobs > 300);
    assert!(
        report.all_deadlines_met(),
        "{} misses",
        report.deadline_misses
    );
    assert!(report.integrity_preserved());
}

#[test]
fn every_feasible_period_of_the_paper_example_simulates_cleanly() {
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
    for period in [0.5, 0.855, 1.3, 2.0, 2.5, 2.966] {
        let alloc = minimum_allocation(&problem, period).unwrap();
        let slots = SlotSchedule::new(
            period,
            PerMode::from_fn(|m| alloc.useful[m]),
            PerMode::from_fn(|m| alloc.overheads[m]),
        )
        .unwrap();
        let report = simulate(
            &problem.tasks,
            &problem.partition,
            Algorithm::EarliestDeadlineFirst,
            &slots,
            &SimulationConfig::fault_free(240.0),
        )
        .unwrap();
        assert!(
            report.all_deadlines_met(),
            "P = {period}: {} deadline misses",
            report.deadline_misses
        );
    }
}

#[test]
fn starving_each_mode_in_turn_causes_misses_in_that_mode_only() {
    let (tasks, partition) = paper_example();
    for starved in Mode::ALL {
        let mut quanta = PerMode {
            ft: 0.820,
            fs: 1.281,
            nf: 0.815,
        };
        quanta[starved] = 0.05; // far below the required minimum
        let slots =
            SlotSchedule::new(2.966, quanta, PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0)).unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &slots,
            &SimulationConfig::fault_free(240.0),
        )
        .unwrap();
        assert!(
            report.deadline_misses > 0,
            "starving {starved} should cause misses"
        );
        // Misses must be confined to tasks of the starved mode.
        let trace = report.trace.expect("trace recorded");
        for record in trace.jobs.iter().filter(|r| !r.deadline_met) {
            let task = tasks.get(record.job.task).unwrap();
            assert_eq!(
                task.mode, starved,
                "a {} task missed while starving {starved}",
                task.mode
            );
        }
    }
}

#[test]
fn simulated_response_times_stay_below_the_analytical_deadline_bound() {
    let (tasks, partition) = paper_example();
    let report = simulate(
        &tasks,
        &partition,
        Algorithm::EarliestDeadlineFirst,
        &table2b_slots(),
        &SimulationConfig::fault_free(240.0),
    )
    .unwrap();
    for task in tasks.iter() {
        if let Some(rt) = report.worst_response_time(task.id) {
            assert!(rt.as_units() <= task.deadline + 1e-9, "{}", task.id);
        }
    }
}

#[test]
fn slot_supply_dominates_the_linear_bound_used_by_the_analysis() {
    // Empirical minimum supply over sliding windows ≥ Z'(t) for every mode
    // and a range of window lengths — the soundness of the whole analysis.
    let slots = table2b_slots();
    for mode in Mode::ALL {
        let q = slots.useful_quantum(mode).as_units();
        let p = slots.period().as_units();
        let supply = LinearSupply::from_slot(q, p).unwrap();
        for window in [0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 9.0] {
            let empirical = slots
                .empirical_min_supply(mode, Duration::from_units(window), 97)
                .as_units();
            assert!(
                empirical + 1e-6 >= supply.supply(window),
                "{mode}: window {window}: {empirical:.4} < {:.4}",
                supply.supply(window)
            );
        }
    }
}

#[test]
fn rm_and_edf_simulations_agree_when_both_are_feasible() {
    // At a period feasible for both schedulers, both simulate cleanly.
    let problem_edf = paper_problem(Algorithm::EarliestDeadlineFirst);
    let problem_rm = paper_problem(Algorithm::RateMonotonic);
    let period = 1.5;
    for problem in [&problem_edf, &problem_rm] {
        let alloc = minimum_allocation(problem, period).unwrap();
        let slots = SlotSchedule::new(
            period,
            PerMode::from_fn(|m| alloc.useful[m]),
            PerMode::from_fn(|m| alloc.overheads[m]),
        )
        .unwrap();
        let report = simulate(
            &problem.tasks,
            &problem.partition,
            problem.algorithm,
            &slots,
            &SimulationConfig::fault_free(120.0),
        )
        .unwrap();
        assert!(report.all_deadlines_met(), "{}", problem.algorithm);
    }
}

#[test]
fn execution_slices_never_overlap_and_respect_slot_boundaries() {
    let (tasks, partition) = paper_example();
    let slots = table2b_slots();
    let report = simulate(
        &tasks,
        &partition,
        Algorithm::EarliestDeadlineFirst,
        &slots,
        &SimulationConfig::fault_free(120.0),
    )
    .unwrap();
    let trace = report.trace.unwrap();
    assert!(trace.slices_are_disjoint_per_channel());
    for slice in &trace.slices {
        // Every executed instant belongs to the useful phase of the slice's
        // mode (check the slice midpoint; boundaries are half-open).
        let mid = slice.start + slice.length() / 2;
        match slots.phase_at(mid) {
            Some(phase) => {
                assert!(
                    phase.is_useful(),
                    "slice executes during an overhead window"
                );
                assert_eq!(phase.mode(), slice.mode);
            }
            None => panic!("slice executes during unallocated slack"),
        }
    }
}

//! The shard/merge contract, end to end: splitting a campaign into
//! shards with `run_campaign_shard` and folding the partial reports with
//! `merge_reports` reproduces the unsharded report **byte for byte** —
//! JSON, CSV and table — at any thread count, for both the
//! paper-validation example spec and a synthetic spec that sweeps the
//! widened overhead × heuristic grid.

use ftsched_campaign::prelude::*;

fn example_spec(name: &str) -> CampaignSpec {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec: CampaignSpec = serde_json::from_str(&text).unwrap();
    spec.validate().unwrap();
    spec
}

fn exec(threads: usize, block_size: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        block_size,
        progress: false,
        heartbeat: false,
        design_cache: true,
    }
}

/// Runs `spec` unsharded, then as `count` shards folded back together,
/// and asserts every rendering is byte-identical at 1, 2 and 8 threads.
fn assert_shards_merge_exactly(spec: &CampaignSpec, count: usize) {
    let reference = run_campaign(spec, &exec(1, 32)).unwrap();
    let reference_json = reference.to_json();
    let reference_csv = reference.to_csv();
    let reference_table = reference.render_table();

    for threads in [1usize, 2, 8] {
        // The unsharded run is thread-invariant...
        let full = run_campaign(spec, &exec(threads, 5)).unwrap();
        assert_eq!(
            full.to_json(),
            reference_json,
            "unsharded JSON changed at {threads} threads"
        );

        // ...and so is the shard → merge round trip, even when each
        // shard runs at a different thread/block configuration.
        let parts: Vec<CampaignReport> = (0..count)
            .map(|index| {
                let shard = ShardInfo { index, count };
                let config = exec(if index % 2 == 0 { threads } else { 1 }, 3 + index);
                let part = run_campaign_shard(spec, &config, Some(shard)).unwrap();
                assert_eq!(part.shard, Some(shard));
                assert!(!part.is_complete());
                // Round-trip each partial through its JSON file format,
                // exactly as `ftsched merge` will see it.
                serde_json::from_str(&part.to_json()).unwrap()
            })
            .collect();
        let merged = merge_reports(parts).unwrap();
        assert!(merged.is_complete());
        assert_eq!(
            merged.to_json(),
            reference_json,
            "merged JSON diverged ({count} shards, {threads} threads)"
        );
        assert_eq!(
            merged.to_csv(),
            reference_csv,
            "merged CSV diverged ({count} shards, {threads} threads)"
        );
        assert_eq!(
            merged.render_table(),
            reference_table,
            "merged table diverged ({count} shards, {threads} threads)"
        );
    }
}

#[test]
fn paper_validation_campaign_shards_and_merges_byte_identically() {
    // The paper-validation example spec: a single scenario whose 100
    // trials are sliced across shards (trial-level sharding).
    let spec = example_spec("fault_injection.json");
    assert_shards_merge_exactly(&spec, 3);
}

#[test]
fn widened_grid_campaign_shards_and_merges_byte_identically() {
    // The widened-grid example: 54 scenarios across overhead × heuristic
    // axes with response histograms, sliced across scenario boundaries.
    let spec = example_spec("grid_sweep.json");
    assert_shards_merge_exactly(&spec, 4);
}

#[test]
fn shard_order_does_not_matter_to_merge() {
    let spec = example_spec("fault_injection.json");
    let reference = run_campaign(&spec, &exec(2, 8)).unwrap();
    let mut parts: Vec<CampaignReport> = (0..3)
        .map(|index| {
            run_campaign_shard(&spec, &exec(2, 8), Some(ShardInfo { index, count: 3 })).unwrap()
        })
        .collect();
    parts.reverse();
    let merged = merge_reports(parts).unwrap();
    assert_eq!(merged.to_json(), reference.to_json());
}

#[test]
fn degenerate_shard_counts_still_merge() {
    let spec = CampaignSpec {
        trials_per_scenario: 5,
        ..example_spec("fault_injection.json")
    };
    let reference = run_campaign(&spec, &exec(1, 32)).unwrap();
    // More shards than trials: the tail shards are empty partials.
    let count = 9;
    let parts: Vec<CampaignReport> = (0..count)
        .map(|index| {
            run_campaign_shard(&spec, &exec(1, 32), Some(ShardInfo { index, count })).unwrap()
        })
        .collect();
    assert!(parts.iter().any(|p| p.scenarios.is_empty()));
    let merged = merge_reports(parts).unwrap();
    assert_eq!(merged.to_json(), reference.to_json());
}

#[test]
fn incomplete_shard_sets_are_rejected() {
    let spec = example_spec("fault_injection.json");
    let part0 =
        run_campaign_shard(&spec, &exec(1, 32), Some(ShardInfo { index: 0, count: 2 })).unwrap();
    let part1 =
        run_campaign_shard(&spec, &exec(1, 32), Some(ShardInfo { index: 1, count: 2 })).unwrap();
    // Missing shard.
    assert!(matches!(
        merge_reports(vec![part0.clone()]),
        Err(CampaignError::InvalidMerge(_))
    ));
    // Duplicated shard.
    assert!(merge_reports(vec![part0.clone(), part0.clone()]).is_err());
    // Complete set works.
    assert!(merge_reports(vec![part0, part1]).is_ok());
    // Out-of-range shard coordinates are rejected up front.
    assert!(matches!(
        run_campaign_shard(&spec, &exec(1, 32), Some(ShardInfo { index: 2, count: 2 })),
        Err(CampaignError::InvalidSpec(_))
    ));
}

//! Integration test: every headline number of the paper's evaluation
//! (Table 1, Table 2 and Figure 4) is reproduced by the public API.

use ftsched_core::prelude::*;
use ftsched_design::region::{
    max_admissible_overhead, max_feasible_period, max_slack_ratio_period,
};

fn edf_problem() -> DesignProblem {
    paper_problem(Algorithm::EarliestDeadlineFirst)
}

fn rm_problem() -> DesignProblem {
    paper_problem(Algorithm::RateMonotonic)
}

fn zero_overhead(problem: &DesignProblem) -> DesignProblem {
    problem.with_overheads(PerMode::splat(0.0)).unwrap()
}

#[test]
fn table1_task_set_structure() {
    let tasks = paper_taskset();
    assert_eq!(tasks.len(), 13);
    assert_eq!(
        tasks.tasks_in_mode(Mode::NonFaultTolerant).unwrap().len(),
        5
    );
    assert_eq!(tasks.tasks_in_mode(Mode::FailSilent).unwrap().len(), 4);
    assert_eq!(tasks.tasks_in_mode(Mode::FaultTolerant).unwrap().len(), 4);
    // Spot-check a few rows of Table 1.
    assert_eq!(tasks.get(TaskId(5)).unwrap().wcet, 6.0);
    assert_eq!(tasks.get(TaskId(5)).unwrap().period, 24.0);
    assert_eq!(tasks.get(TaskId(9)).unwrap().period, 4.0);
    assert_eq!(tasks.get(TaskId(13)).unwrap().wcet, 2.0);
    assert_eq!(tasks.get(TaskId(13)).unwrap().period, 30.0);
}

#[test]
fn table2a_required_utilizations() {
    let req = edf_problem().required_utilizations().unwrap();
    assert!((req[Mode::FaultTolerant] - 0.267).abs() < 1e-3);
    assert!((req[Mode::FailSilent] - 0.267).abs() < 1e-3);
    assert!((req[Mode::NonFaultTolerant] - 0.250).abs() < 1e-3);
}

#[test]
fn figure4_maximum_periods_with_zero_overhead() {
    let config = RegionConfig::paper_figure4();
    let edf = max_feasible_period(&zero_overhead(&edf_problem()), &config).unwrap();
    let rm = max_feasible_period(&zero_overhead(&rm_problem()), &config).unwrap();
    assert!(
        (edf - 3.176).abs() < 0.01,
        "EDF max period {edf:.4} (paper: 3.176)"
    );
    assert!(
        (rm - 2.381).abs() < 0.01,
        "RM max period {rm:.4} (paper: 2.381)"
    );
}

#[test]
fn figure4_maximum_admissible_overheads() {
    let config = RegionConfig::paper_figure4();
    let edf = max_admissible_overhead(&zero_overhead(&edf_problem()), &config).unwrap();
    let rm = max_admissible_overhead(&zero_overhead(&rm_problem()), &config).unwrap();
    assert!(
        (edf.lhs - 0.201).abs() < 0.005,
        "EDF max overhead {:.4} (paper: 0.201)",
        edf.lhs
    );
    assert!(
        (rm.lhs - 0.129).abs() < 0.005,
        "RM max overhead {:.4} (paper: 0.129)",
        rm.lhs
    );
}

#[test]
fn figure4_maximum_period_with_paper_overhead() {
    let config = RegionConfig::paper_figure4();
    let p = max_feasible_period(&edf_problem(), &config).unwrap();
    assert!(
        (p - 2.966).abs() < 0.01,
        "EDF max period at O=0.05 is {p:.4} (paper: 2.966)"
    );
}

#[test]
fn table2b_min_overhead_design() {
    let outcome = design_and_validate(
        &edf_problem(),
        DesignGoal::MinimizeOverheadBandwidth,
        &PipelineConfig::default(),
    )
    .unwrap();
    let alloc = &outcome.solution.allocation;
    assert!((outcome.solution.period - 2.966).abs() < 0.01);
    assert!((alloc.min_useful[Mode::FaultTolerant] - 0.820).abs() < 0.006);
    assert!((alloc.min_useful[Mode::FailSilent] - 1.281).abs() < 0.006);
    assert!((alloc.min_useful[Mode::NonFaultTolerant] - 0.815).abs() < 0.006);
    assert!(alloc.slack.abs() < 0.01);
    let bw = outcome.solution.allocated_bandwidth();
    assert!((bw[Mode::FaultTolerant] - 0.276).abs() < 0.005);
    assert!((bw[Mode::FailSilent] - 0.432).abs() < 0.006);
    assert!((bw[Mode::NonFaultTolerant] - 0.275).abs() < 0.005);
    assert!((outcome.solution.overhead_bandwidth() - 0.017).abs() < 0.003);
}

#[test]
fn table2c_max_slack_design() {
    let config = RegionConfig::paper_figure4();
    let best = max_slack_ratio_period(&edf_problem(), &config).unwrap();
    assert!(
        (best.period - 0.855).abs() < 0.02,
        "slack-optimal period {:.4} (paper: 0.855)",
        best.period
    );

    let outcome = design_and_validate(
        &edf_problem(),
        DesignGoal::MaximizeSlackBandwidth,
        &PipelineConfig::default(),
    )
    .unwrap();
    let alloc = &outcome.solution.allocation;
    assert!((alloc.min_useful[Mode::FaultTolerant] - 0.230).abs() < 0.01);
    assert!((alloc.min_useful[Mode::FailSilent] - 0.252).abs() < 0.01);
    assert!((alloc.min_useful[Mode::NonFaultTolerant] - 0.220).abs() < 0.01);
    assert!((alloc.slack - 0.103).abs() < 0.01);
    assert!(
        (outcome.solution.slack_bandwidth() - 0.121).abs() < 0.006,
        "paper: 12.1% redistributable"
    );
}

#[test]
fn paper_necessary_condition_check_from_section_4() {
    // The paper verifies Q̃_NF / P = 0.275 ≥ max_i U(T_NF^i) = 0.250.
    let problem = edf_problem();
    let alloc = ftsched_design::quanta::minimum_allocation(&problem, 2.966).unwrap();
    let bw_nf = alloc.allocated_bandwidth()[Mode::NonFaultTolerant];
    let req_nf = problem.required_utilizations().unwrap()[Mode::NonFaultTolerant];
    assert!((bw_nf - 0.275).abs() < 0.005);
    assert!((req_nf - 0.250).abs() < 1e-9);
    assert!(bw_nf >= req_nf);
}

#[test]
fn edf_region_strictly_contains_rm_region() {
    // "the EDF region is larger than the RM one, because every RM
    // schedulable task set is also schedulable under EDF."
    let config = RegionConfig::paper_figure4();
    let edf =
        ftsched_design::region::sweep_region(&zero_overhead(&edf_problem()), &config).unwrap();
    let rm = ftsched_design::region::sweep_region(&zero_overhead(&rm_problem()), &config).unwrap();
    let mut strictly_larger_somewhere = false;
    for (e, r) in edf.points.iter().zip(&rm.points) {
        assert!(
            e.lhs + 1e-9 >= r.lhs,
            "EDF curve below RM at P = {}",
            e.period
        );
        if e.lhs > r.lhs + 1e-3 {
            strictly_larger_somewhere = true;
        }
    }
    assert!(strictly_larger_somewhere);
}

//! Integration tests of the fault-injection path: the tick-level platform,
//! the job-level classification and the scheduling simulator must tell a
//! consistent story about what a single transient fault can and cannot do
//! in each operating mode.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_platform::cpu::CoreId;

fn table2b_slots() -> SlotSchedule {
    SlotSchedule::new(
        2.966,
        PerMode {
            ft: 0.820,
            fs: 1.281,
            nf: 0.815,
        },
        PerMode::splat(PAPER_TOTAL_OVERHEAD / 3.0),
    )
    .unwrap()
}

#[test]
fn platform_level_campaign_preserves_memory_integrity_in_protected_modes() {
    let mut rng = StdRng::seed_from_u64(99);
    for mode in [Mode::FaultTolerant, Mode::FailSilent] {
        let mut platform = Platform::new(PlatformConfig {
            initial_mode: mode,
            record_writes: true,
        });
        let schedule = FaultSchedule::poisson(
            &mut rng,
            Time::from_units(100.0),
            Duration::from_units(2.0),
            Duration::from_units(0.5),
        );
        // Inject each fault, run a burst of work on every channel while the
        // fault is live, then clear it — the worst case for the checker.
        for (i, fault) in schedule.faults().iter().enumerate() {
            platform.inject_fault(fault);
            for channel in 0..platform.channel_count() {
                let _ = platform.run_job(channel, i as u64, 16, fault.at);
            }
            platform.clear_fault(fault.core);
        }
        assert!(
            platform.memory().integrity_preserved(),
            "{mode}: a wrong value reached the shared memory"
        );
        assert_eq!(platform.stats().wrong_commits, 0, "{mode}");
        assert!(platform.stats().faults_injected > 10);
    }
}

#[test]
fn platform_level_campaign_lets_wrong_values_through_only_in_nf_mode() {
    let mut platform = Platform::new(PlatformConfig {
        initial_mode: Mode::NonFaultTolerant,
        record_writes: true,
    });
    let mut rng = StdRng::seed_from_u64(7);
    let schedule = FaultSchedule::poisson(
        &mut rng,
        Time::from_units(50.0),
        Duration::from_units(2.0),
        Duration::from_units(0.5),
    );
    let mut corrupted = 0u64;
    for (i, fault) in schedule.faults().iter().enumerate() {
        platform.inject_fault(fault);
        let report = platform.run_job(fault.core.0, i as u64, 8, fault.at);
        corrupted += report.wrong_units;
        platform.clear_fault(fault.core);
    }
    assert!(
        corrupted > 0,
        "NF mode must let corrupted work units through"
    );
    assert!(!platform.memory().integrity_preserved());
}

#[test]
fn simulator_campaign_matches_mode_guarantees_on_the_paper_design() {
    let (tasks, partition) = paper_example();
    let mut rng = StdRng::seed_from_u64(2007);
    let horizon = 600.0;
    let faults = FaultSchedule::poisson(
        &mut rng,
        Time::from_units(horizon),
        Duration::from_units(8.0),
        Duration::from_units(0.25),
    );
    let injected = faults.len() as u64;
    let report = simulate(
        &tasks,
        &partition,
        Algorithm::EarliestDeadlineFirst,
        &table2b_slots(),
        &SimulationConfig {
            horizon,
            fault_schedule: faults,
            record_trace: false,
            record_response_times: false,
        },
    )
    .unwrap();

    // Mode guarantees.
    assert_eq!(report.outcomes[Mode::FaultTolerant].wrong_result, 0);
    assert_eq!(report.outcomes[Mode::FailSilent].wrong_result, 0);
    assert_eq!(report.outcomes[Mode::FaultTolerant].silenced_lost, 0);
    // With ~75 faults over 600 time units and ~36% of the timeline being
    // NF useful time, some corruption and some masking must be observed.
    assert!(
        report.outcomes[Mode::FaultTolerant].correct_masked > 0,
        "no FT fault was masked"
    );
    assert!(
        report.outcomes[Mode::NonFaultTolerant].wrong_result > 0,
        "no NF job was corrupted"
    );
    assert!(report.effective_faults > 0);
    assert!(report.effective_faults <= injected);
    // Timing is unaffected by faults in this fault model.
    assert!(report.all_deadlines_met());
}

#[test]
fn directed_faults_hit_exactly_the_targeted_mode() {
    let (tasks, partition) = paper_example();
    // Build one fault per mode, each placed in the middle of that mode's
    // first useful window and striking a core of the first channel.
    let cases = [
        (Mode::FaultTolerant, 0.4, 0usize),
        (Mode::FailSilent, 1.2, 1usize),
        (Mode::NonFaultTolerant, 2.5, 0usize),
    ];
    for (mode, at, core) in cases {
        let schedule = FaultSchedule::new(vec![Fault {
            at: Time::from_units(at),
            duration: Duration::from_units(0.1),
            core: CoreId(core),
            mask: 0x1234,
        }])
        .unwrap();
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon: 30.0,
                fault_schedule: schedule,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        let affected: u64 = Mode::ALL
            .iter()
            .map(|&m| {
                let o = report.outcomes[m];
                o.correct_masked + o.silenced_lost + o.wrong_result
            })
            .sum();
        let own = report.outcomes[mode];
        let own_affected = own.correct_masked + own.silenced_lost + own.wrong_result;
        assert!(own_affected > 0, "{mode}: the directed fault had no effect");
        assert_eq!(
            affected, own_affected,
            "{mode}: a fault leaked into another mode"
        );
    }
}

#[test]
fn fault_rate_sweep_shows_monotone_exposure_in_nf_mode() {
    // Higher fault rates never reduce the number of corrupted NF jobs
    // (statistically; with fixed seeds the counts are deterministic).
    let (tasks, partition) = paper_example();
    let horizon = 600.0;
    let mut last = 0u64;
    for (i, mean_gap) in [40.0, 10.0, 2.5].into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(1000 + i as u64);
        let faults = FaultSchedule::poisson(
            &mut rng,
            Time::from_units(horizon),
            Duration::from_units(mean_gap),
            Duration::from_units(0.25),
        );
        let report = simulate(
            &tasks,
            &partition,
            Algorithm::EarliestDeadlineFirst,
            &table2b_slots(),
            &SimulationConfig {
                horizon,
                fault_schedule: faults,
                record_trace: false,
                record_response_times: false,
            },
        )
        .unwrap();
        let corrupted = report.outcomes[Mode::NonFaultTolerant].wrong_result;
        assert!(
            corrupted >= last,
            "corruption count dropped from {last} to {corrupted} as the fault rate increased"
        );
        last = corrupted;
    }
    assert!(last > 0);
}

//! Property-based tests of the analysis layer: the invariants the paper's
//! derivations rest on, checked on randomly generated task sets and slot
//! parameters.

use proptest::prelude::*;

use ftsched_analysis::{edf, fp, minq};
use ftsched_core::prelude::*;
use ftsched_task::PriorityOrder;

/// Strategy: a small implicit-deadline task with bounded utilisation.
///
/// Periods are drawn from a fixed harmonic-ish menu so the hyperperiod of
/// any generated set stays small (≤ 120), keeping the EDF deadline-set
/// analysis exact (no horizon capping) — the properties below rely on
/// that exactness.
fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    const PERIODS: [f64; 8] = [2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0];
    (0usize..PERIODS.len(), 5u32..=50).prop_map(move |(p_idx, util_percent)| {
        let period = PERIODS[p_idx];
        let wcet = period * util_percent as f64 / 100.0;
        Task::implicit_deadline(id, wcet, period, Mode::NonFaultTolerant).unwrap()
    })
}

/// Strategy: a task set of 1..=5 tasks.
fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(any::<()>(), 1..=5).prop_flat_map(|slots| {
        let n = slots.len();
        let tasks: Vec<_> = (0..n).map(|i| arb_task(i as u32 + 1)).collect();
        tasks.prop_map(|ts| TaskSet::new(ts).unwrap())
    })
}

/// Strategy: slot parameters (quantum, period) with 0 < quantum <= period.
fn arb_slot() -> impl Strategy<Value = (f64, f64)> {
    (1u32..=100, 1u32..=100).prop_map(|(a, b)| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        (lo as f64 / 10.0, hi as f64 / 10.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The exact supply of Lemma 1 always dominates the linear bound of
    /// Eq. 3, and both are monotone non-decreasing and 1-Lipschitz.
    #[test]
    fn exact_supply_dominates_linear_bound((quantum, period) in arb_slot(), window in 0.0f64..50.0) {
        let exact = PeriodicSlotSupply::new(quantum, period).unwrap();
        let linear = exact.linear_bound();
        prop_assert!(linear.supply(window) <= exact.supply(window) + 1e-9);
        prop_assert!(exact.supply(window) <= window + 1e-9);
        // Monotonicity over a short forward step.
        prop_assert!(exact.supply(window + 0.25) + 1e-9 >= exact.supply(window));
    }

    /// The supply inverse is consistent with the supply.
    #[test]
    fn supply_inverse_round_trips((quantum, period) in arb_slot(), demand in 0.01f64..20.0) {
        let exact = PeriodicSlotSupply::new(quantum, period).unwrap();
        let t = exact.inverse(demand);
        prop_assert!(exact.supply(t) + 1e-6 >= demand);
        prop_assert!(exact.supply((t - 1e-4).max(0.0)) <= demand + 1e-6);
    }

    /// EDF dominance: any task set accepted by the hierarchical RM test on
    /// a given linear supply is also accepted by the hierarchical EDF test.
    #[test]
    fn edf_dominates_rm_on_any_supply(tasks in arb_taskset(), (quantum, period) in arb_slot()) {
        let supply = LinearSupply::from_slot(quantum, period).unwrap();
        let rm_ok = fp::schedulable_with_supply(&tasks, PriorityOrder::RateMonotonic, &supply);
        if rm_ok {
            prop_assert!(edf::schedulable_with_supply(&tasks, &supply));
        }
    }

    /// minQ is the exact schedulability threshold for EDF: the returned
    /// quantum is sufficient and (quantum − ε) is not.
    #[test]
    fn minq_is_the_edf_threshold(tasks in arb_taskset(), period_tenths in 2u32..40) {
        let period = period_tenths as f64 / 10.0;
        let mq = minq::min_quantum(&tasks, Algorithm::EarliestDeadlineFirst, period).unwrap();
        if mq.feasible() && mq.quantum > 1e-3 {
            let ok = LinearSupply::from_slot((mq.quantum + 1e-9).min(period), period).unwrap();
            prop_assert!(edf::schedulable_with_supply(&tasks, &ok));
            let bad = LinearSupply::from_slot(mq.quantum - 1e-3, period).unwrap();
            prop_assert!(!edf::schedulable_with_supply(&tasks, &bad));
        }
    }

    /// minQ never allocates less bandwidth than the task-set utilisation
    /// (necessary condition, meaningful only for non-overloaded sets) and
    /// never less under RM than under EDF.
    #[test]
    fn minq_ordering_and_bandwidth(tasks in arb_taskset(), period_tenths in 2u32..40) {
        let period = period_tenths as f64 / 10.0;
        let edf_q = minq::min_quantum(&tasks, Algorithm::EarliestDeadlineFirst, period).unwrap();
        let rm_q = minq::min_quantum(&tasks, Algorithm::RateMonotonic, period).unwrap();
        // EDF dominance only has meaning where RM admits a real slot at
        // all; for overloaded channels both quanta exceed the period and
        // their relative order is unconstrained.
        if rm_q.feasible() {
            prop_assert!(edf_q.quantum <= rm_q.quantum + 1e-9);
        }
        if tasks.utilization() <= 1.0 {
            prop_assert!(edf_q.bandwidth() + 1e-9 >= tasks.utilization());
        }
    }

    /// minQ is monotone in the period: a longer slot period never requires
    /// a shorter quantum.
    #[test]
    fn minq_monotone_in_period(tasks in arb_taskset(), p1_tenths in 2u32..30, delta_tenths in 1u32..20) {
        let p1 = p1_tenths as f64 / 10.0;
        let p2 = p1 + delta_tenths as f64 / 10.0;
        for alg in [Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic] {
            let q1 = minq::min_quantum(&tasks, alg, p1).unwrap().quantum;
            let q2 = minq::min_quantum(&tasks, alg, p2).unwrap().quantum;
            prop_assert!(q2 + 1e-9 >= q1);
        }
    }

    /// The dedicated-processor tests agree between the supply-based
    /// formulation (with Z(t) = t) and the classic formulations.
    #[test]
    fn dedicated_supply_consistency(tasks in arb_taskset()) {
        let by_supply_edf = edf::schedulable_with_supply(&tasks, &ftsched_analysis::DedicatedSupply);
        prop_assert_eq!(by_supply_edf, edf::schedulable_dedicated(&tasks));
        let by_supply_rm = fp::schedulable_with_supply(
            &tasks,
            PriorityOrder::RateMonotonic,
            &ftsched_analysis::DedicatedSupply,
        );
        prop_assert_eq!(by_supply_rm, fp::schedulable_dedicated(&tasks, PriorityOrder::RateMonotonic));
    }

    /// The hyperbolic bound is sufficient: whatever it accepts, the exact
    /// response-time analysis also accepts.
    #[test]
    fn hyperbolic_bound_is_sufficient(tasks in arb_taskset()) {
        if fp::hyperbolic_bound(&tasks) {
            prop_assert!(fp::schedulable_dedicated(&tasks, PriorityOrder::RateMonotonic));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The parametric sweep kernel: `with_scaled_wcets(λ)` must match a
    /// from-scratch `MinQSweep` built over the `scale_wcets`-style scaled
    /// task set (WCETs multiplied by λ, clamped at the deadline) — to
    /// ≤ 1e-12 relative error for any λ, and **bit-identical** at λ = 1.
    /// `rescale_into` must agree with `with_scaled_wcets` exactly.
    #[test]
    fn scaled_sweep_matches_a_from_scratch_rebuild(
        tasks in arb_taskset(),
        alg_idx in 0usize..3,
        lambda_steps in 0u32..=70,
        period_tenths in 2u32..40,
    ) {
        use ftsched_analysis::MinQSweep;
        let alg = Algorithm::ALL[alg_idx];
        // λ ∈ [1, 8] on a 0.1 grid, including the exact identity λ = 1.
        let lambda = 1.0 + f64::from(lambda_steps) * 0.1;
        let period = f64::from(period_tenths) / 10.0;

        let base = MinQSweep::new(&tasks, alg).unwrap();
        let scaled = base.with_scaled_wcets(lambda);
        let mut scratch = base.clone();
        base.rescale_into(lambda, &mut scratch);

        let rebuilt_set = TaskSet::new(
            tasks
                .iter()
                .map(|t| {
                    let mut clone = t.clone();
                    clone.wcet = (t.wcet * lambda).min(clone.deadline);
                    clone
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let rebuilt = MinQSweep::new(&rebuilt_set, alg).unwrap();

        let a = scaled.min_quantum_at(period).unwrap();
        let b = rebuilt.min_quantum_at(period).unwrap();
        let c = scratch.min_quantum_at(period).unwrap();

        let rel = (a.quantum - b.quantum).abs() / b.quantum.abs().max(1e-300);
        prop_assert!(rel <= 1e-12, "λ={lambda} P={period}: {} vs {}", a.quantum, b.quantum);
        prop_assert_eq!(a.binding_instant.to_bits(), b.binding_instant.to_bits());
        prop_assert_eq!(a.quantum.to_bits(), c.quantum.to_bits());
        if lambda == 1.0 {
            prop_assert_eq!(a.quantum.to_bits(), b.quantum.to_bits());
            prop_assert!(scaled == base, "λ=1 must be the identity");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// UUniFast returns exactly the requested number of non-negative
    /// utilisations summing to the target.
    #[test]
    fn uunifast_invariants(n in 1usize..20, total_tenths in 1u32..30, seed in any::<u64>()) {
        use rand::SeedableRng;
        let total = total_tenths as f64 / 10.0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let utils = ftsched_task::generator::uunifast(&mut rng, n, total);
        prop_assert_eq!(utils.len(), n);
        prop_assert!(utils.iter().all(|&u| u >= -1e-12));
        let sum: f64 = utils.iter().sum();
        prop_assert!((sum - total).abs() < 1e-6);
    }

    /// Generated task sets respect the generator configuration.
    #[test]
    fn generator_respects_config(seed in any::<u64>(), n in 2usize..15, u_tenths in 2u32..30) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let total = (u_tenths as f64 / 10.0).min(n as f64 * 0.9);
        let config = GeneratorConfig::paper_like(n, total);
        let set = generate_taskset(&mut rng, &config).unwrap();
        prop_assert_eq!(set.len(), n);
        prop_assert!((set.utilization() - total).abs() < 1e-6);
        prop_assert!(set.iter().all(|t| t.wcet > 0.0 && t.wcet <= t.period));
    }
}

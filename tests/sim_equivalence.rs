//! Property battery pinning the event-driven simulation engine to the
//! slot-stepping reference (`ftsched_sim::reference`): over randomised
//! task sets, fault patterns, horizons and trace configurations the two
//! engines must produce **bit-identical** `SimulationReport`s — same
//! counters, same slices, same per-job records, same response times.
//!
//! The event engine earns its speed by jumping idle spans and walking
//! fault windows lazily; every shortcut is only legal if it is
//! observationally invisible. These properties are the contract.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_design::problem::DesignProblem;
use ftsched_design::quanta::minimum_allocation;
use ftsched_platform::cpu::CoreId;
use ftsched_sim::reference::simulate_slot_stepping;

/// Generates a partitioned problem from a seed; `None` when the workload
/// does not partition (too heavy), which the properties simply skip.
fn problem_from_seed(seed: u64, algorithm: Algorithm) -> Option<DesignProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = GeneratorConfig::paper_like(8, 1.0);
    config.max_task_utilization = 0.5;
    let tasks = generate_taskset(&mut rng, &config).ok()?;
    let partition = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing).ok()?;
    DesignProblem::with_total_overhead(tasks, partition, 0.04, algorithm).ok()
}

fn slots_for(problem: &DesignProblem, period: f64) -> Option<SlotSchedule> {
    let alloc = minimum_allocation(problem, period).ok()?;
    SlotSchedule::new(
        period,
        PerMode::from_fn(|m| alloc.useful[m]),
        PerMode::from_fn(|m| alloc.overheads[m]),
    )
    .ok()
}

fn algorithm_from(pick: u8) -> Algorithm {
    match pick % 3 {
        0 => Algorithm::RateMonotonic,
        1 => Algorithm::DeadlineMonotonic,
        _ => Algorithm::EarliestDeadlineFirst,
    }
}

/// Runs both engines on identical inputs and asserts full-report
/// equality (covers misses, outcomes, executed time, traces, response
/// times — everything `SimulationReport` carries).
fn assert_engines_agree(
    problem: &DesignProblem,
    slots: &SlotSchedule,
    config: &SimulationConfig,
    context: &str,
) -> Result<(), TestCaseError> {
    let event = simulate(
        &problem.tasks,
        &problem.partition,
        problem.algorithm,
        slots,
        config,
    )
    .unwrap();
    let slot = simulate_slot_stepping(
        &problem.tasks,
        &problem.partition,
        problem.algorithm,
        slots,
        config,
    )
    .unwrap();
    prop_assert!(
        event == slot,
        "event engine diverged from reference: {}",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised workloads × Poisson fault schedules × horizons ×
    /// trace/response-time recording: the engines agree bit for bit.
    #[test]
    fn event_engine_matches_slot_reference(
        seed in 0u64..5000,
        fault_seed in 0u64..5000,
        algo_pick in 0u8..3,
        period_tenths in 4u32..20,
        horizon_units in 40u32..400,
        mean_gap_tenths in 5u32..120,
        record_trace in any::<bool>(),
        record_response_times in any::<bool>(),
    ) {
        let algorithm = algorithm_from(algo_pick);
        let Some(problem) = problem_from_seed(seed, algorithm) else { return Ok(()) };
        let period = period_tenths as f64 / 10.0;
        let Some(slots) = slots_for(&problem, period) else { return Ok(()) };
        let horizon = (horizon_units as f64).min(problem.tasks.hyperperiod() * 4.0);
        let mut rng = StdRng::seed_from_u64(fault_seed);
        let fault_schedule = FaultSchedule::poisson(
            &mut rng,
            Time::from_units(horizon),
            Duration::from_units(mean_gap_tenths as f64 / 10.0),
            Duration::from_units(0.3),
        );
        let config = SimulationConfig {
            horizon,
            fault_schedule,
            record_trace,
            record_response_times,
        };
        assert_engines_agree(
            &problem,
            &slots,
            &config,
            &format!("seed {seed}, faults {fault_seed}, P={period}, H={horizon}"),
        )?;
    }

    /// Fault-free runs (the idle-jump fast path does the most work here)
    /// with full recording on: still bit-identical.
    #[test]
    fn event_engine_matches_reference_fault_free(
        seed in 0u64..5000,
        algo_pick in 0u8..3,
        period_tenths in 4u32..20,
        horizon_units in 40u32..600,
    ) {
        let algorithm = algorithm_from(algo_pick);
        let Some(problem) = problem_from_seed(seed, algorithm) else { return Ok(()) };
        let period = period_tenths as f64 / 10.0;
        let Some(slots) = slots_for(&problem, period) else { return Ok(()) };
        let config = SimulationConfig {
            horizon: horizon_units as f64,
            fault_schedule: FaultSchedule::none(),
            record_trace: true,
            record_response_times: true,
        };
        assert_engines_agree(&problem, &slots, &config, &format!("seed {seed}, P={period}"))?;
    }

    /// Directed adversarial fault windows: straddling slot boundaries,
    /// landing exactly on a boundary, and zero-length windows. These are
    /// the edges where the event engine's lazy fault-window walk could
    /// plausibly diverge from tick-by-tick injection.
    #[test]
    fn event_engine_matches_reference_on_boundary_straddling_faults(
        seed in 0u64..5000,
        algo_pick in 0u8..3,
        boundary in 1u32..12,
        offset_millis in -400i32..400,
        dur_millis in 0u32..900,
        core in 0usize..4,
    ) {
        let algorithm = algorithm_from(algo_pick);
        let Some(problem) = problem_from_seed(seed, algorithm) else { return Ok(()) };
        let period = 1.0;
        let Some(slots) = slots_for(&problem, period) else { return Ok(()) };
        // A fault window positioned around the `boundary`-th slot edge
        // (possibly zero-length, possibly starting exactly on the edge),
        // plus a second one later to exercise the monotone fault cursor.
        let at = (boundary as f64 * period + offset_millis as f64 / 1000.0).max(0.0);
        let duration = dur_millis as f64 / 1000.0;
        let faults = vec![
            Fault {
                at: Time::from_units(at),
                duration: Duration::from_units(duration),
                core: CoreId(core),
                mask: 0xDEAD_BEEF,
            },
            Fault {
                at: Time::from_units(at + duration + 3.5 * period),
                duration: Duration::from_units(0.2),
                core: CoreId((core + 1) % 4),
                mask: 0xBADC_0FFE,
            },
        ];
        let config = SimulationConfig {
            horizon: (boundary as f64 + 8.0) * period,
            fault_schedule: FaultSchedule::new(faults).unwrap(),
            record_trace: true,
            record_response_times: true,
        };
        assert_engines_agree(
            &problem,
            &slots,
            &config,
            &format!("seed {seed}, boundary {boundary}, offset {offset_millis}ms, dur {dur_millis}ms"),
        )?;
    }
}

//! The design-cache contract: a `WorkloadSpec::Paper` campaign run with
//! the shared design cache produces **byte-identical** JSON and CSV
//! reports to an uncached run (which recomputes the deterministic design
//! stage on every trial), at any thread/block configuration.

use ftsched_campaign::prelude::*;

/// A paper-workload validation campaign: every trial designs the same
/// Table 1 problem and differs only in its Poisson fault draw — the
/// workload the design cache exists for.
fn paper_validation_campaign() -> CampaignSpec {
    CampaignSpec {
        master_seed: 77,
        trials_per_scenario: 12,
        workload: WorkloadSpec::Paper,
        utilizations: vec![],
        algorithms: vec![Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic],
        faults: FaultModel::Poisson {
            mean_interarrival: 6.0,
            fault_duration: 0.25,
        },
        horizon_hyperperiods: 1,
        kind: TrialKind::DesignAndValidate,
        compare_baselines: true,
        ..CampaignSpec::base("design-cache-proof")
    }
}

fn run(spec: &CampaignSpec, threads: usize, block_size: usize, cache: bool) -> (String, String) {
    let report = run_campaign(
        spec,
        &ExecutorConfig {
            threads,
            block_size,
            progress: false,
            heartbeat: false,
            design_cache: cache,
        },
    )
    .unwrap();
    (report.to_json(), report.to_csv())
}

#[test]
fn cached_paper_campaign_reports_are_byte_identical_to_uncached() {
    let spec = paper_validation_campaign();
    let (reference_json, reference_csv) = run(&spec, 1, 32, false);

    for (threads, block_size) in [(1, 32), (4, 5), (8, 1), (2, 7)] {
        let (json, csv) = run(&spec, threads, block_size, true);
        assert_eq!(
            json, reference_json,
            "cached JSON diverged (threads={threads}, block={block_size})"
        );
        assert_eq!(
            csv, reference_csv,
            "cached CSV diverged (threads={threads}, block={block_size})"
        );
    }
}

#[test]
fn cached_design_only_campaign_matches_uncached() {
    let spec = CampaignSpec {
        kind: TrialKind::DesignOnly,
        faults: FaultModel::None,
        trials_per_scenario: 20,
        ..paper_validation_campaign()
    };
    let (reference_json, reference_csv) = run(&spec, 1, 32, false);
    let (json, csv) = run(&spec, 4, 3, true);
    assert_eq!(json, reference_json);
    assert_eq!(csv, reference_csv);
}

#[test]
fn cached_trials_reproduce_table_2b_per_trial() {
    // Spot-check values, not just equality of aggregates: the cached
    // campaign's accepted trials must still carry the Table 2(b) period.
    let spec = paper_validation_campaign();
    let report = run_campaign(
        &spec,
        &ExecutorConfig {
            threads: 4,
            block_size: 4,
            progress: false,
            heartbeat: false,
            design_cache: true,
        },
    )
    .unwrap();
    let edf = &report.scenarios[0];
    assert_eq!(edf.algorithm, Algorithm::EarliestDeadlineFirst);
    assert_eq!(edf.stats.accepted, spec.trials_per_scenario as u64);
    let mean_period = edf.stats.sim.mean_period();
    assert!(
        (mean_period - 2.966).abs() < 0.01,
        "mean accepted period {mean_period:.4} should be the Table 2(b) design"
    );
}

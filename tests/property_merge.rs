//! Property tests of the campaign merge algebra: the statistics that
//! make sharded, multi-threaded campaigns byte-identical to sequential
//! ones are exactly associative and commutative, and folding shards
//! equals folding the raw trial stream.
//!
//! These properties are the *mechanism* behind the engine's determinism
//! guarantees (`tests/campaign_determinism.rs` and
//! `tests/campaign_sharding.rs` check the end-to-end effect; this file
//! checks the algebra itself on randomized trial streams).

use proptest::prelude::*;

use ftsched_campaign::trial::BaselineVerdicts;
use ftsched_campaign::{
    LatencyCurve, LatencyCurveSpec, ResponseHistogram, ResponseHistogramSpec, RunCounters,
    ScenarioStats, SimSummary, TaskResponse, TrialOutcome, TrialStatus,
};
use ftsched_sim::report::OutcomeCounts;
use ftsched_task::{PerMode, TaskId};

const HISTOGRAM: ResponseHistogramSpec = ResponseHistogramSpec {
    bin_width: 0.5,
    bins: 32,
};

const LATENCY: LatencyCurveSpec = LatencyCurveSpec {
    bin_width: 0.0625,
    bins: 24,
};

/// Builds a latency-curve point from deadline-relative observations in
/// eighths (`0..24` maps onto `0.0..3.0` deadlines, with some overflow).
fn latency_from(observations: &[u8]) -> LatencyCurve {
    let mut curve = LatencyCurve::new(LATENCY);
    for &scaled in observations {
        curve.observe(f64::from(scaled) / 8.0);
    }
    curve
}

fn status_from(code: u8) -> TrialStatus {
    match code % 5 {
        0 => TrialStatus::Accepted,
        1 => TrialStatus::GenerationFailed,
        2 => TrialStatus::PartitionFailed,
        3 => TrialStatus::DesignRejected,
        _ => TrialStatus::SimulationFailed,
    }
}

/// Builds a sorted per-task histogram list from raw `(task, rt)` pairs.
fn responses_from(observations: &[(u8, u32)]) -> Vec<TaskResponse> {
    let mut out: Vec<TaskResponse> = Vec::new();
    for &(task, rt_scaled) in observations {
        let task = TaskId(u32::from(task % 4));
        let rt = f64::from(rt_scaled) / 4.0; // 0.0 .. 20.0, some overflow
        let i = match out.binary_search_by_key(&task, |r| r.task) {
            Ok(i) => i,
            Err(i) => {
                out.insert(
                    i,
                    TaskResponse {
                        task,
                        histogram: ResponseHistogram::new(HISTOGRAM),
                    },
                );
                i
            }
        };
        out[i].histogram.observe(rt);
    }
    out
}

/// Strategy: one randomized trial outcome, exercising every counter the
/// accumulator folds (statuses, baselines, simulation summaries with
/// per-task histograms).
fn arb_outcome() -> impl Strategy<Value = TrialOutcome> {
    (
        (0u8..5, any::<u64>(), 0u8..32),
        (1u32..200, 0u32..200, 0u32..10, 0u32..20),
        (0u32..400, 0u32..100),
        (
            prop::collection::vec((0u8..8, 0u32..90), 0..10),
            prop::collection::vec(0u8..32, 0..12),
        ),
    )
        .prop_map(
            |(
                (status_code, seed, baseline_bits),
                (released, completed, misses, faults),
                (period_scaled, slack_scaled),
                (observations, latencies),
            )| {
                let status = status_from(status_code);
                let baselines = (baseline_bits < 16).then_some(BaselineVerdicts {
                    flexible: baseline_bits & 1 != 0,
                    static_lockstep: baseline_bits & 2 != 0,
                    static_parallel: baseline_bits & 4 != 0,
                    primary_backup: baseline_bits & 8 != 0,
                });
                let sim = (status == TrialStatus::Accepted).then(|| SimSummary {
                    period: 0.5 + f64::from(period_scaled) / 100.0,
                    slack_bandwidth: f64::from(slack_scaled) / 200.0,
                    overhead_bandwidth: 0.05,
                    released_jobs: u64::from(released),
                    completed_jobs: u64::from(completed.min(released)),
                    deadline_misses: u64::from(misses),
                    injected_faults: u64::from(faults),
                    effective_faults: u64::from(faults / 2),
                    outcomes: PerMode::splat(OutcomeCounts {
                        correct_no_fault: u64::from(completed / 3),
                        correct_masked: u64::from(faults),
                        silenced_lost: u64::from(faults / 3),
                        wrong_result: u64::from(misses / 2),
                    }),
                    max_response_time: f64::from(period_scaled) / 40.0,
                    response: Some(responses_from(&observations)),
                    // Roughly half the accepted trials carry a margin, so
                    // the merge algebra is exercised across present and
                    // absent observations.
                    wcet_margin: (faults % 2 == 0).then(|| 1.0 + f64::from(slack_scaled) / 100.0),
                    // Likewise for the latency curve: some accepted
                    // trials carry one, some do not — the optional-slot
                    // merge must treat `None` as the identity.
                    latency: (released % 3 != 0).then(|| latency_from(&latencies)),
                });
                TrialOutcome {
                    scenario: 0,
                    trial: 0,
                    seed,
                    status,
                    baselines,
                    sim,
                }
            },
        )
}

/// Strategy: one randomized deterministic-counter block, covering the
/// whole `u64` range so saturation is exercised too.
fn arb_counters() -> impl Strategy<Value = RunCounters> {
    prop::collection::vec(any::<u64>(), 20).prop_map(|v| RunCounters {
        trials_started: v[0],
        trials_completed: v[1],
        trials_accepted: v[2],
        trials_generation_failed: v[3],
        trials_partition_failed: v[4],
        trials_design_rejected: v[5],
        trials_simulation_failed: v[6],
        design_cache_requests: v[7],
        generation_cache_requests: v[8],
        partition_cache_requests: v[9],
        validate_runs: v[10],
        sim_runs: v[11],
        sim_windows: v[12],
        sim_slices: v[13],
        sim_jobs_released: v[14],
        sim_jobs_completed: v[15],
        sim_faults_injected: v[16],
        sim_events: v[17],
        sim_idle_spans_jumped: v[18],
        sim_ticks_materialised: v[19],
    })
}

fn fold(outcomes: &[TrialOutcome]) -> ScenarioStats {
    let mut stats = ScenarioStats::default();
    for outcome in outcomes {
        stats.observe(outcome);
    }
    stats
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `ScenarioStats::merge` is associative and commutative over any
    /// three-way split of a trial stream, and reassociates back to the
    /// sequential fold.
    #[test]
    fn scenario_stats_merge_is_associative_and_commutative(
        outcomes in prop::collection::vec(arb_outcome(), 0..40),
        cut_x in 0usize..41,
        cut_y in 0usize..41,
    ) {
        let n = outcomes.len();
        let (lo, hi) = if cut_x <= cut_y { (cut_x, cut_y) } else { (cut_y, cut_x) };
        let (lo, hi) = (lo.min(n), hi.min(n));
        let a = fold(&outcomes[..lo]);
        let b = fold(&outcomes[lo..hi]);
        let c = fold(&outcomes[hi..]);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // Either association equals the plain sequential fold.
        prop_assert_eq!(&left, &fold(&outcomes));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
    }

    /// Folding contiguous shards of the trial stream and merging the
    /// shard accumulators in shard order reproduces the fold of all
    /// trials — the exact invariant `ftsched merge` relies on.
    #[test]
    fn merge_of_shards_equals_fold_of_all_trials(
        outcomes in prop::collection::vec(arb_outcome(), 1..60),
        shard_count in 1usize..7,
    ) {
        let sequential = fold(&outcomes);
        let n = outcomes.len();
        let mut merged = ScenarioStats::default();
        for shard in 0..shard_count {
            // The same contiguous slicing `run_campaign_shard` uses.
            let lo = shard * n / shard_count;
            let hi = (shard + 1) * n / shard_count;
            merged.merge(&fold(&outcomes[lo..hi]));
        }
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.trials, n as u64);
    }

    /// `ResponseHistogram::merge` is exact: associative, commutative and
    /// count-preserving over arbitrary observation streams.
    #[test]
    fn response_histogram_merge_is_exact(
        observations in prop::collection::vec(0u32..100, 0..80),
        cut_x in 0usize..81,
        cut_y in 0usize..81,
    ) {
        let observe_all = |values: &[u32]| {
            let mut h = ResponseHistogram::new(HISTOGRAM);
            for &v in values {
                h.observe(f64::from(v) / 4.0);
            }
            h
        };
        let n = observations.len();
        let (lo, hi) = if cut_x <= cut_y { (cut_x, cut_y) } else { (cut_y, cut_x) };
        let (lo, hi) = (lo.min(n), hi.min(n));
        let a = observe_all(&observations[..lo]);
        let b = observe_all(&observations[lo..hi]);
        let c = observe_all(&observations[hi..]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &observe_all(&observations));
        prop_assert_eq!(left.total(), n as u64);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Quantiles are monotone in q and bounded by the bin range.
        let p50 = left.quantile(0.5);
        let p95 = left.quantile(0.95);
        let p99 = left.quantile(0.99);
        prop_assert!(p50 <= p95 && p95 <= p99);
        if n > 0 {
            prop_assert!(p50 > 0.0);
        }
    }

    /// `LatencyCurve::merge` is exact over any three-way split of an
    /// observation stream: associative, commutative, count-preserving —
    /// and reassociates back to the single-pass fold.
    #[test]
    fn latency_curve_merge_is_associative_and_commutative(
        observations in prop::collection::vec(0u8..32, 0..80),
        cut_x in 0usize..81,
        cut_y in 0usize..81,
    ) {
        let n = observations.len();
        let (lo, hi) = if cut_x <= cut_y { (cut_x, cut_y) } else { (cut_y, cut_x) };
        let (lo, hi) = (lo.min(n), hi.min(n));
        let a = latency_from(&observations[..lo]);
        let b = latency_from(&observations[lo..hi]);
        let c = latency_from(&observations[hi..]);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &latency_from(&observations));
        prop_assert_eq!(left.samples(), n as u64);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);

        // Quantiles stay monotone under the merge.
        prop_assert!(left.p50() <= left.p95() && left.p95() <= left.p99());
    }

    /// Folding contiguous shards of a latency observation stream and
    /// merging the shard curves in shard order reproduces the fold of
    /// all observations — the invariant that makes `--shard` +
    /// `ftsched merge` latency reports byte-identical to unsharded runs.
    #[test]
    fn latency_shard_fold_equals_all_observations_fold(
        observations in prop::collection::vec(0u8..32, 1..60),
        shard_count in 1usize..7,
    ) {
        let sequential = latency_from(&observations);
        let n = observations.len();
        let mut merged = LatencyCurve::new(LATENCY);
        for shard in 0..shard_count {
            // The same contiguous slicing `run_campaign_shard` uses.
            let lo = shard * n / shard_count;
            let hi = (shard + 1) * n / shard_count;
            merged.merge(&latency_from(&observations[lo..hi]));
        }
        prop_assert_eq!(&merged, &sequential);
        prop_assert_eq!(merged.samples(), n as u64);
    }

    /// `RunCounters::merged` — the fold behind `ftsched merge
    /// --metrics` — is associative and commutative with
    /// `RunCounters::default()` as the identity, so shard metrics can be
    /// folded in any grouping and any order.
    #[test]
    fn run_counters_merge_is_associative_and_commutative(
        a in arb_counters(),
        b in arb_counters(),
        c in arb_counters(),
    ) {
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        prop_assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
        // Commutativity: a ⊕ b == b ⊕ a.
        prop_assert_eq!(a.merged(&b), b.merged(&a));
        // Zero identity on both sides.
        let zero = RunCounters::default();
        prop_assert_eq!(a.merged(&zero), a);
        prop_assert_eq!(zero.merged(&a), a);
    }
}

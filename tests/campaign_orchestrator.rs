//! The orchestrator's recovery contract, end to end: supervised shard
//! workers with retries, atomic integrity-checked checkpoints, and
//! resume-by-adoption must always converge on a merged report that is
//! **byte-identical** to an unsharded `run_campaign` of the same spec —
//! however many workers fail, however many times the orchestrator is
//! restarted, and whatever random subset of checkpoints survives (or is
//! corrupted) between restarts.

use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;

use ftsched_campaign::checkpoint::checkpoint_path;
use ftsched_campaign::prelude::*;
use ftsched_campaign::{InProcessBackend, ShardLaunch, WorkerFailure};

fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        algorithms: vec![Algorithm::EarliestDeadlineFirst],
        utilizations: vec![0.6, 1.1, 1.5],
        trials_per_scenario: 4,
        ..CampaignSpec::base("orchestrator-test")
    }
}

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty checkpoint directory unique to this process + call.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ftsched-orch-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fast-retry orchestrator config for tests.
fn config(shards: usize, dir: &Path) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::new(shards, dir.to_path_buf());
    config.backoff_base_ms = 1;
    config.backoff_cap_ms = 2;
    config.workers = 2;
    config
}

/// Wraps the in-process backend, failing listed shards once (injected
/// failures are consumed, so the retry succeeds).
struct FlakyBackend {
    inner: InProcessBackend,
    fail_once: Mutex<HashSet<usize>>,
}

impl FlakyBackend {
    fn failing(indices: impl IntoIterator<Item = usize>) -> Self {
        FlakyBackend {
            inner: InProcessBackend { threads: 1 },
            fail_once: Mutex::new(indices.into_iter().collect()),
        }
    }
}

impl WorkerBackend for FlakyBackend {
    fn run_shard(&self, launch: &ShardLaunch<'_>) -> Result<(), WorkerFailure> {
        if self.fail_once.lock().unwrap().remove(&launch.shard.index) {
            return Err(WorkerFailure::Exit("injected crash".into()));
        }
        self.inner.run_shard(launch)
    }
}

/// Always fails the listed shards; runs the rest normally.
struct BrokenShardBackend {
    inner: InProcessBackend,
    broken: HashSet<usize>,
}

impl WorkerBackend for BrokenShardBackend {
    fn run_shard(&self, launch: &ShardLaunch<'_>) -> Result<(), WorkerFailure> {
        if self.broken.contains(&launch.shard.index) {
            return Err(WorkerFailure::Exit("permanently broken".into()));
        }
        self.inner.run_shard(launch)
    }
}

/// A backend that must never be called (resume should adopt instead).
struct ForbiddenBackend;

impl WorkerBackend for ForbiddenBackend {
    fn run_shard(&self, launch: &ShardLaunch<'_>) -> Result<(), WorkerFailure> {
        panic!(
            "shard {} was launched although its checkpoint should have been adopted",
            launch.shard
        );
    }
}

#[test]
fn orchestrated_report_matches_unsharded_run() {
    let spec = tiny_spec();
    let reference = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let dir = temp_dir("identity");
    let outcome = orchestrate(&spec, &config(4, &dir), &InProcessBackend { threads: 1 }).unwrap();
    assert_eq!(outcome.report.to_json(), reference.to_json());
    assert_eq!(outcome.report.to_csv(), reference.to_csv());
    assert!(outcome.missing.is_empty());
    assert_eq!(outcome.stats.launches, 4);
    assert_eq!(outcome.stats.retries, 0);
    assert_eq!(outcome.stats.checkpoints_written, 4);
    // The deterministic worker counters fold exactly: every trial the
    // unsharded run would start is accounted for across the shards.
    assert_eq!(
        outcome.worker_counters.trials_started,
        spec.trial_count() as u64
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_shards_are_retried_to_a_byte_identical_report() {
    let spec = tiny_spec();
    let reference = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let dir = temp_dir("retry");
    let backend = FlakyBackend::failing([0, 2]);
    let outcome = orchestrate(&spec, &config(4, &dir), &backend).unwrap();
    assert_eq!(outcome.report.to_json(), reference.to_json());
    assert_eq!(outcome.stats.retries, 2);
    assert_eq!(outcome.stats.worker_failures, 2);
    assert_eq!(outcome.stats.launches, 6); // 4 first attempts + 2 retries
    assert_eq!(outcome.stats.shards_failed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_fail_strict_and_degrade_with_allow_partial() {
    let spec = tiny_spec();
    let dir = temp_dir("exhaust");
    let backend = BrokenShardBackend {
        inner: InProcessBackend { threads: 1 },
        broken: [2usize].into_iter().collect(),
    };

    // Strict mode: the run fails and says which shard and why.
    let mut strict = config(4, &dir);
    strict.max_retries = 1;
    let error = orchestrate(&spec, &strict, &backend).unwrap_err();
    let message = error.to_string();
    assert!(message.contains("shard 2/4"), "got: {message}");
    assert!(message.contains("permanently broken"), "got: {message}");

    // Graceful degradation: the merged report records the gap.
    let mut partial = config(4, &dir);
    partial.max_retries = 1;
    partial.allow_partial = true;
    let outcome = orchestrate(&spec, &partial, &backend).unwrap();
    assert_eq!(outcome.missing, vec![ShardInfo { index: 2, count: 4 }]);
    assert_eq!(outcome.report.missing_shards, outcome.missing);
    assert!(!outcome.report.is_complete());
    assert!(outcome.report.to_json().contains("missing_shards"));
    assert!(outcome.report.render_table().contains("missing shards 2/4"));

    // The three completed checkpoints survived both runs: a rerun with a
    // healed fleet adopts them and only runs the broken shard.
    let reference = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let healed = orchestrate(&spec, &config(4, &dir), &InProcessBackend { threads: 1 }).unwrap();
    assert_eq!(healed.stats.checkpoints_adopted, 3);
    assert_eq!(healed.stats.launches, 1);
    assert_eq!(healed.report.to_json(), reference.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_adopts_every_checkpoint_without_launching_workers() {
    let spec = tiny_spec();
    let dir = temp_dir("adopt");
    let first = orchestrate(&spec, &config(3, &dir), &InProcessBackend { threads: 1 }).unwrap();
    // Same directory, a backend that panics on any launch: adoption must
    // cover all shards.
    let resumed = orchestrate(&spec, &config(3, &dir), &ForbiddenBackend).unwrap();
    assert_eq!(resumed.stats.checkpoints_adopted, 3);
    assert_eq!(resumed.stats.launches, 0);
    assert_eq!(resumed.report.to_json(), first.report.to_json());
    // Adopted counters equal the original run's fold.
    assert_eq!(resumed.worker_counters, first.worker_counters);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_checkpoints_are_rejected_and_rerun() {
    let spec = tiny_spec();
    let reference = run_campaign(&spec, &ExecutorConfig::default()).unwrap();
    let dir = temp_dir("tamper");
    orchestrate(&spec, &config(3, &dir), &InProcessBackend { threads: 1 }).unwrap();

    // Flip one payload byte of shard 1's checkpoint: the FNV-1a footer
    // no longer matches, so resume must re-run exactly that shard.
    let path = checkpoint_path(&dir, ShardInfo { index: 1, count: 3 });
    let mut bytes = std::fs::read(&path).unwrap();
    let at = bytes.iter().position(|&b| b == b'8').unwrap_or(10);
    bytes[at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let resumed = orchestrate(&spec, &config(3, &dir), &InProcessBackend { threads: 1 }).unwrap();
    assert_eq!(resumed.stats.checkpoints_invalid, 1);
    assert_eq!(resumed.stats.checkpoints_adopted, 2);
    assert_eq!(resumed.stats.launches, 1);
    assert_eq!(resumed.report.to_json(), reference.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For ANY subset of surviving checkpoints — with any sub-subset of
    /// them truncated on disk — resuming the orchestrator re-runs
    /// exactly the missing/corrupt shards and merges byte-identically
    /// to the unsharded report.
    #[test]
    fn resume_from_any_checkpoint_subset_is_byte_identical(
        keep_mask in 0u32..32,
        corrupt_mask in 0u32..32,
    ) {
        const SHARDS: usize = 5;
        let spec = tiny_spec();
        let reference = run_campaign(&spec, &ExecutorConfig::default()).unwrap().to_json();

        // Seed a complete checkpoint set, then knock out / corrupt the
        // masked shards, simulating an interrupted campaign.
        let dir = temp_dir("proptest");
        orchestrate(&spec, &config(SHARDS, &dir), &InProcessBackend { threads: 1 }).unwrap();
        let mut kept = 0u64;
        let mut corrupted = 0u64;
        for index in 0..SHARDS {
            let path = checkpoint_path(&dir, ShardInfo { index, count: SHARDS });
            if keep_mask & (1 << index) == 0 {
                std::fs::remove_file(&path).unwrap();
            } else if corrupt_mask & (1 << index) != 0 {
                // Truncate: loses the integrity footer.
                let bytes = std::fs::read(&path).unwrap();
                std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
                corrupted += 1;
            } else {
                kept += 1;
            }
        }

        let resumed = orchestrate(&spec, &config(SHARDS, &dir), &InProcessBackend { threads: 1 }).unwrap();
        prop_assert_eq!(resumed.report.to_json(), reference);
        prop_assert_eq!(resumed.stats.checkpoints_adopted, kept);
        prop_assert_eq!(resumed.stats.checkpoints_invalid, corrupted);
        prop_assert_eq!(resumed.stats.launches, SHARDS as u64 - kept);
        // Round-trip invariant: the merged partials re-parse to the
        // same report `ftsched merge` would produce from files.
        let reparsed: CampaignReport =
            serde_json::from_str(&resumed.report.to_json()).unwrap();
        prop_assert_eq!(reparsed.to_json(), resumed.report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

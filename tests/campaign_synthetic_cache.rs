//! The synthetic-workload cache contract (the ROADMAP's "design cache
//! for synthetic workloads, keyed on the generated task-set content
//! hash"): campaigns whose grids pair trials across the algorithm /
//! overhead / partition-heuristic axes share the deterministic
//! generation and partitioning stages across scenarios, and the shared
//! path produces **byte-identical** JSON and CSV reports to the uncached
//! reference path (`--no-design-cache`), at any thread/block
//! configuration. Mirrors `tests/campaign_design_cache.rs`, which proves
//! the same contract for the paper workload's design stage.

use ftsched_campaign::prelude::*;

/// A synthetic validation campaign that sweeps every axis the caches
/// key on: two algorithms, two overheads, two heuristics, plus response
/// histograms (so the cached RNG hand-off is exercised through the
/// fault draw and the simulation stage).
fn widened_synthetic_campaign() -> CampaignSpec {
    CampaignSpec {
        master_seed: 99,
        trials_per_scenario: 8,
        workload: WorkloadSpec::Synthetic {
            task_count: 8,
            max_task_utilization: 0.5,
            periods: PeriodDistribution::table1_like(),
            mode_mix: ModeMix::paper_like(),
            period_granularity: None,
        },
        algorithms: vec![Algorithm::EarliestDeadlineFirst, Algorithm::RateMonotonic],
        utilizations: vec![0.9, 1.3],
        overheads: vec![0.02, 0.08],
        partition_heuristics: vec![
            PartitionHeuristic::FirstFitDecreasing,
            PartitionHeuristic::WorstFitDecreasing,
        ],
        faults: FaultModel::Poisson {
            mean_interarrival: 10.0,
            fault_duration: 0.25,
        },
        horizon_hyperperiods: 1,
        kind: TrialKind::DesignAndValidate,
        compare_baselines: true,
        region_samples: Some(200),
        region_refine_iterations: Some(10),
        response_histogram: Some(ResponseHistogramSpec {
            bin_width: 0.5,
            bins: 64,
        }),
        ..CampaignSpec::base("synthetic-cache-proof")
    }
}

fn run(spec: &CampaignSpec, threads: usize, block_size: usize, cache: bool) -> (String, String) {
    let report = run_campaign(
        spec,
        &ExecutorConfig {
            threads,
            block_size,
            progress: false,
            heartbeat: false,
            design_cache: cache,
        },
    )
    .unwrap();
    (report.to_json(), report.to_csv())
}

#[test]
fn cached_synthetic_campaign_reports_are_byte_identical_to_uncached() {
    let spec = widened_synthetic_campaign();
    let (reference_json, reference_csv) = run(&spec, 1, 32, false);

    for (threads, block_size) in [(1, 32), (4, 5), (8, 1), (2, 7)] {
        let (json, csv) = run(&spec, threads, block_size, true);
        assert_eq!(
            json, reference_json,
            "cached JSON diverged (threads={threads}, block={block_size})"
        );
        assert_eq!(
            csv, reference_csv,
            "cached CSV diverged (threads={threads}, block={block_size})"
        );
    }
}

#[test]
fn cached_design_only_campaign_matches_uncached() {
    let spec = CampaignSpec {
        kind: TrialKind::DesignOnly,
        faults: FaultModel::None,
        response_histogram: None,
        trials_per_scenario: 16,
        ..widened_synthetic_campaign()
    };
    let (reference_json, reference_csv) = run(&spec, 1, 32, false);
    let (json, csv) = run(&spec, 4, 3, true);
    assert_eq!(json, reference_json);
    assert_eq!(csv, reference_csv);
}

#[test]
fn paired_axes_share_workloads_by_construction() {
    // The caches exist because these columns are paired: same workload
    // point + trial ⇒ same seed ⇒ same task set, across every
    // algorithm / overhead / heuristic combination.
    let spec = widened_synthetic_campaign();
    let scenarios = spec.scenarios();
    let points = spec.utilizations.len();
    for s in &scenarios {
        assert_eq!(s.workload_point, s.index % points);
    }
    for trial in 0..2 {
        let seeds: Vec<u64> = scenarios
            .iter()
            .filter(|s| s.workload_point == 0)
            .map(|s| run_trial(&spec, s, trial).seed)
            .collect();
        assert_eq!(seeds.len(), 8); // 2 algorithms x 2 overheads x 2 heuristics
        assert!(seeds.windows(2).all(|w| w[0] == w[1]));
    }
}

//! Equivalence proof for the sweep-aware minQ kernel: over randomized
//! task sets, all three algorithms and dense period grids,
//! `MinQSweep::min_quantum_at(P)` must reproduce the historical
//! per-sample kernel **bit for bit** — same `quantum`, same `period`,
//! same `binding_instant`.
//!
//! The reference below re-implements the seed algorithm literally
//! (re-enumerating scheduling points / deadline sets and re-summing the
//! workloads at every period), so the production one-shot wrapper and the
//! sweep are both checked against an independent third implementation.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched::analysis::edf::DEFAULT_HORIZON_CAP;
use ftsched::analysis::minq::quantum_at_point;
use ftsched::analysis::points::{capped_hyperperiod, deadline_set, scheduling_points};
use ftsched::analysis::workload::{edf_demand, fp_workload};
use ftsched::analysis::{min_quantum, min_quantum_multi, Algorithm, MinQuantum};
use ftsched::analysis::{MinQSweep, MinQSweepMulti};
use ftsched::task::generator::{generate_taskset, GeneratorConfig, ModeMix, PeriodDistribution};
use ftsched::task::{Mode, TaskSet};

/// A literal re-implementation of the seed's per-sample `min_quantum`:
/// everything is recomputed at every call, exactly in the seed's
/// iteration order.
fn naive_min_quantum(tasks: &TaskSet, algorithm: Algorithm, period: f64) -> MinQuantum {
    match algorithm {
        Algorithm::RateMonotonic | Algorithm::DeadlineMonotonic => {
            let order = algorithm.priority_order().unwrap();
            let sorted = tasks.sorted_by_priority(order);
            let mut worst = MinQuantum {
                quantum: 0.0,
                period,
                binding_instant: 0.0,
            };
            for (i, task) in sorted.iter().enumerate() {
                let hp = &sorted[..i];
                let points = scheduling_points(task.deadline, hp);
                let mut best = MinQuantum {
                    quantum: f64::INFINITY,
                    period,
                    binding_instant: task.deadline,
                };
                for &t in &points {
                    let q = quantum_at_point(t, period, fp_workload(task, hp, t));
                    if q < best.quantum {
                        best = MinQuantum {
                            quantum: q,
                            period,
                            binding_instant: t,
                        };
                    }
                }
                if best.quantum > worst.quantum {
                    worst = best;
                }
            }
            worst
        }
        Algorithm::EarliestDeadlineFirst => {
            let horizon = capped_hyperperiod(tasks.tasks(), DEFAULT_HORIZON_CAP);
            let deadlines = deadline_set(tasks.tasks(), horizon);
            let mut worst = MinQuantum {
                quantum: 0.0,
                period,
                binding_instant: 0.0,
            };
            for &t in &deadlines {
                let q = quantum_at_point(t, period, edf_demand(tasks.tasks(), t));
                if q > worst.quantum {
                    worst = MinQuantum {
                        quantum: q,
                        period,
                        binding_instant: t,
                    };
                }
            }
            worst
        }
    }
}

fn assert_bitwise_eq(a: &MinQuantum, b: &MinQuantum, context: &str) {
    assert_eq!(
        a.quantum.to_bits(),
        b.quantum.to_bits(),
        "{context}: quantum {} vs {}",
        a.quantum,
        b.quantum
    );
    assert_eq!(
        a.period.to_bits(),
        b.period.to_bits(),
        "{context}: period {} vs {}",
        a.period,
        b.period
    );
    assert_eq!(
        a.binding_instant.to_bits(),
        b.binding_instant.to_bits(),
        "{context}: binding instant {} vs {}",
        a.binding_instant,
        b.binding_instant
    );
}

fn random_taskset(seed: u64, task_count: usize, utilization: f64) -> Option<TaskSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = GeneratorConfig {
        task_count,
        total_utilization: utilization,
        max_task_utilization: 0.8,
        periods: PeriodDistribution::table1_like(),
        mode_mix: ModeMix::paper_like(),
        period_granularity: None,
    };
    generate_taskset(&mut rng, &config).ok()
}

fn period_grid(tasks: &TaskSet) -> Vec<f64> {
    let max_deadline = tasks.iter().map(|t| t.deadline).fold(1.0_f64, f64::max);
    (1..=64)
        .map(|i| 0.02 + (i as f64 / 64.0) * 1.5 * max_deadline)
        .collect()
}

#[test]
fn sweep_matches_the_seed_kernel_bit_for_bit_on_random_sets() {
    let mut checked = 0usize;
    for seed in 0..24u64 {
        let utilization = 0.4 + 0.1 * (seed % 8) as f64;
        let task_count = 3 + (seed % 6) as usize;
        let Some(tasks) = random_taskset(seed, task_count, utilization) else {
            continue;
        };
        for alg in Algorithm::ALL {
            let sweep = MinQSweep::new(&tasks, alg).unwrap();
            for p in period_grid(&tasks) {
                let reference = naive_min_quantum(&tasks, alg, p);
                let one_shot = min_quantum(&tasks, alg, p).unwrap();
                let swept = sweep.min_quantum_at(p).unwrap();
                let context = format!("seed {seed}, {alg}, P={p}");
                assert_bitwise_eq(&reference, &one_shot, &context);
                assert_bitwise_eq(&reference, &swept, &context);
                checked += 1;
            }
        }
    }
    assert!(
        checked > 2000,
        "too few grid points checked ({checked}); generator rejecting everything?"
    );
}

#[test]
fn multi_channel_sweep_matches_the_per_channel_maximum() {
    for seed in 100..112u64 {
        let Some(a) = random_taskset(seed, 4, 0.5) else {
            continue;
        };
        let Some(b) = random_taskset(seed + 1000, 3, 0.4) else {
            continue;
        };
        let channels = vec![a, b];
        for alg in Algorithm::ALL {
            let multi = MinQSweepMulti::new(&channels, alg).unwrap();
            for p in [0.1, 0.5, 1.0, 2.5, 7.0] {
                let reference = min_quantum_multi(&channels, alg, p).unwrap();
                let swept = multi.min_quantum_at(p).unwrap();
                assert_bitwise_eq(&reference, &swept, &format!("seed {seed}, {alg}, P={p}"));
                // And the multi max really is the channel-wise max.
                let worst = channels
                    .iter()
                    .map(|c| min_quantum(c, alg, p).unwrap().quantum)
                    .fold(0.0_f64, f64::max);
                assert_eq!(reference.quantum.to_bits(), worst.to_bits());
            }
        }
    }
}

#[test]
fn paper_example_sweep_matches_on_a_dense_grid() {
    let tasks = ftsched::task::examples::paper_taskset();
    for mode in Mode::ALL {
        let set = tasks.tasks_in_mode(mode).unwrap();
        for alg in Algorithm::ALL {
            let sweep = MinQSweep::new(&set, alg).unwrap();
            for i in 1..=300 {
                let p = i as f64 * 0.012;
                let reference = naive_min_quantum(&set, alg, p);
                let swept = sweep.min_quantum_at(p).unwrap();
                assert_bitwise_eq(&reference, &swept, &format!("{mode}, {alg}, P={p}"));
            }
        }
    }
}

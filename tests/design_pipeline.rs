//! Integration tests of the full design pipeline on workloads other than
//! the paper's example: automatically generated and automatically
//! partitioned task sets must flow through region computation, quantum
//! allocation, slack distribution and simulation without contradiction.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_design::problem::DesignProblem;
use ftsched_design::quanta::minimum_allocation;

fn generated_problem(seed: u64, utilization: f64) -> Option<DesignProblem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut config = GeneratorConfig::paper_like(10, utilization);
    config.max_task_utilization = 0.6;
    let tasks = generate_taskset(&mut rng, &config).ok()?;
    let partition = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing).ok()?;
    DesignProblem::with_total_overhead(tasks, partition, 0.05, Algorithm::EarliestDeadlineFirst)
        .ok()
}

#[test]
fn generated_workloads_design_and_validate_cleanly() {
    let mut designed = 0;
    for seed in 0..20u64 {
        let Some(problem) = generated_problem(seed, 1.2) else {
            continue;
        };
        let config = PipelineConfig {
            region: RegionConfig::for_problem(&problem),
            horizon_hyperperiods: 1,
            ..PipelineConfig::default()
        };
        match design_and_validate(&problem, DesignGoal::MinimizeOverheadBandwidth, &config) {
            Ok(outcome) => {
                designed += 1;
                assert!(
                    outcome.simulation.all_deadlines_met(),
                    "seed {seed}: design P = {:.3} missed {} deadlines",
                    outcome.solution.period,
                    outcome.simulation.deadline_misses
                );
                assert!(outcome.solution.covers_requirements(), "seed {seed}");
            }
            Err(_) => { /* genuinely infeasible workloads are fine */ }
        }
    }
    assert!(
        designed >= 10,
        "only {designed}/20 generated workloads admitted a design"
    );
}

#[test]
fn both_goals_agree_on_feasibility() {
    for seed in 0..10u64 {
        let Some(problem) = generated_problem(seed, 1.0) else {
            continue;
        };
        let region = RegionConfig::for_problem(&problem);
        let a =
            ftsched_design::goals::solve(&problem, DesignGoal::MinimizeOverheadBandwidth, &region);
        let b = ftsched_design::goals::solve(&problem, DesignGoal::MaximizeSlackBandwidth, &region);
        assert_eq!(
            a.is_ok(),
            b.is_ok(),
            "seed {seed}: goals disagree on feasibility"
        );
        if let (Ok(a), Ok(b)) = (a, b) {
            // The max-period goal never has more slack bandwidth than the
            // slack-maximising goal.
            assert!(
                a.slack_bandwidth() <= b.slack_bandwidth() + 1e-9,
                "seed {seed}"
            );
            // And the slack-maximising goal never has a larger period.
            assert!(b.period <= a.period + 1e-9, "seed {seed}");
        }
    }
}

#[test]
fn partition_heuristics_produce_valid_partitions_and_wfd_matches_the_manual_design() {
    let tasks = paper_taskset();
    for heuristic in PartitionHeuristic::ALL {
        // Every heuristic must at least produce a structurally valid
        // partition; whether a feasible period then exists depends on how
        // well it balances the channels (FFD/BFD happily stack all NF
        // tasks on one processor, which shrinks the region to nothing).
        let partition = partition_system(&tasks, heuristic).unwrap();
        partition.validate(&tasks).unwrap();
        let problem = DesignProblem::with_total_overhead(
            tasks.clone(),
            partition,
            0.05,
            Algorithm::EarliestDeadlineFirst,
        )
        .unwrap();
        match design_and_validate(
            &problem,
            DesignGoal::MinimizeOverheadBandwidth,
            &PipelineConfig::default(),
        ) {
            Ok(outcome) => assert!(outcome.simulation.all_deadlines_met(), "{heuristic:?}"),
            Err(err) => assert!(
                !matches!(heuristic, PartitionHeuristic::WorstFitDecreasing),
                "WFD should balance the paper set into a feasible design, got {err:?}"
            ),
        }
    }
    // The load-balancing heuristic reproduces a design comparable to the
    // paper's manual partition.
    let wfd = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing).unwrap();
    let problem =
        DesignProblem::with_total_overhead(tasks, wfd, 0.05, Algorithm::EarliestDeadlineFirst)
            .unwrap();
    let outcome = design_and_validate(
        &problem,
        DesignGoal::MinimizeOverheadBandwidth,
        &PipelineConfig::default(),
    )
    .unwrap();
    assert!(outcome.simulation.all_deadlines_met());
    assert!(
        outcome.solution.period > 1.4,
        "WFD design period {:.3}",
        outcome.solution.period
    );
}

#[test]
fn minimum_allocation_is_tight_against_the_region_boundary() {
    // At the maximum feasible period the slack must vanish; slightly below
    // it must be positive.
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
    let config = RegionConfig::paper_figure4();
    let p_max = ftsched_design::region::max_feasible_period(&problem, &config).unwrap();
    let at_boundary = minimum_allocation(&problem, p_max).unwrap();
    assert!(at_boundary.slack < 0.01);
    let inside = minimum_allocation(&problem, p_max * 0.8).unwrap();
    assert!(inside.slack > 0.0);
}

#[test]
fn sensitivity_margins_are_consistent_with_the_region() {
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
    // The overhead margin at a period equals f(P), so it must be at least
    // the configured O_tot everywhere inside the feasible region.
    for period in [0.6, 0.855, 1.5, 2.0, 2.5, 2.9] {
        let margin =
            ftsched_design::sensitivity::max_total_overhead_at_period(&problem, period).unwrap();
        assert!(margin >= 0.05 - 1e-9, "P = {period}: margin {margin:.4}");
    }
    // WCET margins shrink as the period approaches the boundary.
    let m_small = ftsched_design::sensitivity::wcet_scaling_margin(&problem, 1.0, 1e-3).unwrap();
    let m_large = ftsched_design::sensitivity::wcet_scaling_margin(&problem, 2.9, 1e-3).unwrap();
    assert!(m_small >= m_large - 1e-6);
}

#[test]
fn baseline_comparison_on_the_paper_example() {
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);
    let cmp = compare_schemes(&problem, &RegionConfig::paper_figure4()).unwrap();
    assert!(cmp.verdict(Scheme::Flexible));
    assert!(
        !cmp.verdict(Scheme::StaticLockstep),
        "U ≈ 1.35 cannot fit one processor"
    );
    assert!(cmp.verdict(Scheme::StaticParallel));
    assert!(cmp.verdict(Scheme::PrimaryBackup));
}

//! The columnar report format's contract, end to end: `decode ∘ encode`
//! is the identity on every report the engine can produce, so routing a
//! report through the compact encoding — or through `ftsched convert`,
//! which is exactly that composition — can never change its bytes.
//! Streaming shard merges ([`merge_columnar`], [`MergeFold`]) must fold
//! to the same bytes as the in-memory [`merge_reports`], in any shard
//! order and any scenario-block interleaving, and corrupt or
//! version-skewed inputs must fail loudly with a structured error.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use proptest::prelude::*;

use ftsched_campaign::prelude::*;
use ftsched_campaign::{columnar, merge_reports, MergeFold, ScenarioStats};

fn exec(threads: usize) -> ExecutorConfig {
    ExecutorConfig {
        threads,
        block_size: 7,
        progress: false,
        heartbeat: false,
        design_cache: true,
    }
}

fn example_spec(name: &str) -> CampaignSpec {
    let path = format!("{}/examples/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let spec: CampaignSpec = serde_json::from_str(&text).unwrap();
    spec.validate().unwrap();
    spec
}

/// A small spec whose reports still exercise the optional columns
/// (response histograms, WCET margins, latency curves).
fn tiny_spec() -> CampaignSpec {
    CampaignSpec {
        algorithms: vec![Algorithm::EarliestDeadlineFirst],
        utilizations: vec![0.6, 1.1, 1.5],
        trials_per_scenario: 4,
        kind: TrialKind::DesignAndValidate,
        faults: FaultModel::Poisson {
            mean_interarrival: 40.0,
            fault_duration: 0.2,
        },
        compare_baselines: true,
        response_histogram: Some(ResponseHistogramSpec {
            bin_width: 0.5,
            bins: 24,
        }),
        wcet_margin: Some(WcetMarginSpec { tolerance: 0.001 }),
        latency_curves: Some(LatencyCurveSpec {
            bin_width: 0.0625,
            bins: 24,
        }),
        ..CampaignSpec::base("columnar-test")
    }
}

static DIR_SERIAL: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory unique to this process + call.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ftsched-columnar-test-{tag}-{}-{}",
        std::process::id(),
        DIR_SERIAL.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts that `report` survives the columnar encoding exactly: equal
/// as a struct and byte-identical in every rendering.
fn assert_round_trips(report: &CampaignReport, context: &str) {
    let encoded = columnar::encode_report(report);
    let decoded = columnar::read_report_str(&encoded).unwrap_or_else(|e| {
        panic!("{context}: decode failed: {e}");
    });
    assert_eq!(&decoded, report, "{context}: struct diverged");
    assert_eq!(
        decoded.to_json(),
        report.to_json(),
        "{context}: JSON diverged"
    );
    assert_eq!(decoded.to_csv(), report.to_csv(), "{context}: CSV diverged");
    assert_eq!(
        columnar::encode_report(&decoded),
        encoded,
        "{context}: re-encoding diverged"
    );
}

/// Every shipped example spec round-trips through the columnar format —
/// struct-exact and byte-identical in the JSON and CSV renderings —
/// covering the full optional-column surface (baselines, response
/// histograms, WCET margins, latency curves, fault sweeps).
#[test]
fn every_example_campaign_round_trips_exactly() {
    for name in [
        "acceptance_ratio.json",
        "baseline_comparison.json",
        "fault_injection.json",
        "grid_sweep.json",
        "latency_curves.json",
        "sensitivity_grid.json",
    ] {
        let spec = example_spec(name);
        let report = run_campaign(&spec, &exec(2)).unwrap();
        assert_round_trips(&report, name);
    }
}

/// The golden grid-sweep report: converting JSON → columnar → JSON
/// reproduces the checked-in file byte for byte, and the columnar form
/// is at least 5× smaller than the pretty JSON.
#[test]
fn golden_report_round_trips_bytewise_and_compresses() {
    let path = format!(
        "{}/tests/golden/grid_sweep.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let golden = std::fs::read_to_string(&path).unwrap();
    let report: CampaignReport = serde_json::from_str(&golden).unwrap();

    let encoded = columnar::encode_report(&report);
    assert!(
        encoded.len() * 5 <= golden.len(),
        "columnar is only {}x smaller ({} vs {} bytes)",
        golden.len() as f64 / encoded.len() as f64,
        encoded.len(),
        golden.len()
    );

    let decoded = columnar::read_report_str(&encoded).unwrap();
    assert_eq!(
        decoded.to_json(),
        golden,
        "JSON -> columnar -> JSON is not the identity on the golden report"
    );
}

/// Partial (shard) reports carry their shard line through the encoding,
/// and `merge_columnar` over shard *files* folds to the same bytes as
/// the in-memory `merge_reports` and the unsharded run — in any file
/// order.
#[test]
fn columnar_shard_files_merge_byte_identically() {
    let spec = tiny_spec();
    let reference = run_campaign(&spec, &exec(1)).unwrap();
    let count = 3;
    let parts: Vec<CampaignReport> = (0..count)
        .map(|index| {
            let shard = ShardInfo { index, count };
            let part = run_campaign_shard(&spec, &exec(2), Some(shard)).unwrap();
            assert_round_trips(&part, &format!("shard {shard}"));
            part
        })
        .collect();

    let dir = temp_dir("merge");
    let paths: Vec<PathBuf> = parts
        .iter()
        .enumerate()
        .map(|(index, part)| {
            let path = dir.join(format!("shard-{index}.ftcr"));
            std::fs::write(&path, columnar::encode_report(part)).unwrap();
            path
        })
        .collect();

    let merged_memory = merge_reports(parts).unwrap();
    assert_eq!(merged_memory.to_json(), reference.to_json());

    // Any permutation of the shard files folds to the same bytes: the
    // underlying merge is commutative, and the fold re-sorts nothing.
    for order in [vec![0, 1, 2], vec![2, 0, 1], vec![1, 2, 0]] {
        let shuffled: Vec<&PathBuf> = order.iter().map(|&i| &paths[i]).collect();
        let merged = merge_columnar(&shuffled).unwrap();
        assert_eq!(
            merged.to_json(),
            reference.to_json(),
            "streaming merge diverged for order {order:?}"
        );
        assert_eq!(
            columnar::encode_report(&merged),
            columnar::encode_report(&reference),
            "columnar bytes diverged for order {order:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt inputs fail with a structured one-line error, never a panic
/// or a silently wrong report: truncation, bit rot, trailing garbage,
/// a future format version, and merging a non-shard report.
#[test]
fn corrupt_and_version_skewed_inputs_fail_loudly() {
    let spec = tiny_spec();
    let report = run_campaign(&spec, &exec(2)).unwrap();
    let encoded = columnar::encode_report(&report);

    // Truncation anywhere — mid-block or mid-footer — is caught.
    for keep in [encoded.len() / 3, encoded.len() - 10] {
        let err = columnar::read_report_str(&encoded[..keep]).unwrap_err();
        assert!(
            matches!(err, ColumnarError::Corrupt(_)),
            "truncation at {keep} gave {err}"
        );
    }

    // A single flipped byte in the middle of the payload trips the
    // FNV-1a footer even when the line still parses.
    let mut flipped = encoded.clone().into_bytes();
    let mid = flipped.len() / 2;
    flipped[mid] = if flipped[mid] == b'1' { b'2' } else { b'1' };
    let flipped = String::from_utf8(flipped).unwrap();
    assert!(
        columnar::read_report_str(&flipped).is_err(),
        "flipped payload byte went undetected"
    );

    // Data after the footer means the file is not what was written.
    let trailing = format!("{encoded}tail\n");
    let err = columnar::read_report_str(&trailing).unwrap_err();
    assert!(matches!(err, ColumnarError::Corrupt(_)), "got {err}");

    // A future version is refused up front, with the version named.
    let bumped = encoded.replace("columnar v1", "columnar v2");
    let err = columnar::read_report_str(&bumped).unwrap_err();
    match err {
        ColumnarError::UnsupportedVersion(v) => assert!(v.contains("v2"), "version was `{v}`"),
        other => panic!("expected UnsupportedVersion, got {other}"),
    }

    // merge_columnar refuses a complete (non-shard) report.
    let dir = temp_dir("corrupt");
    let complete = dir.join("complete.ftcr");
    std::fs::write(&complete, &encoded).unwrap();
    let err = merge_columnar(&[&complete]).unwrap_err();
    assert!(
        err.to_string().contains("not a shard"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shard set used by the interleaving property, built once.
struct ShardFixture {
    reference_json: String,
    parts: Vec<CampaignReport>,
    /// Every `(scenario index, stats)` block with its owning shard.
    blocks: Vec<(usize, usize, ScenarioStats)>,
}

fn fixture() -> &'static ShardFixture {
    static FIXTURE: OnceLock<ShardFixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let spec = tiny_spec();
        let reference = run_campaign(&spec, &exec(1)).unwrap();
        let count = 3;
        let parts: Vec<CampaignReport> = (0..count)
            .map(|index| {
                run_campaign_shard(&spec, &exec(2), Some(ShardInfo { index, count })).unwrap()
            })
            .collect();
        let blocks = parts
            .iter()
            .enumerate()
            .flat_map(|(owner, part)| {
                part.scenarios
                    .iter()
                    .map(move |row| (owner, row.scenario, row.stats.clone()))
            })
            .collect();
        ShardFixture {
            reference_json: reference.to_json(),
            parts,
            blocks,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scenario-block streams from different shards can arrive in *any*
    /// interleaving — as long as each shard's header is registered
    /// first, folding the blocks through [`MergeFold`] reproduces the
    /// unsharded report byte for byte. This is the property that lets
    /// `merge_columnar` fold shard files block-wise without buffering.
    #[test]
    fn any_block_interleaving_folds_byte_identically(seed in any::<u64>()) {
        let fixture = fixture();
        let mut order: Vec<usize> = (0..fixture.blocks.len()).collect();
        // Deterministic Fisher-Yates from the proptest-drawn seed (the
        // vendored proptest has no shuffle strategy).
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }

        let mut fold = MergeFold::new();
        for part in &fixture.parts {
            fold.add_header(&part.spec, part.shard).unwrap();
        }
        for &index in &order {
            let (_, scenario, ref stats) = fixture.blocks[index];
            fold.add_scenario(scenario, stats).unwrap();
        }
        let merged = fold.finish(false).unwrap();
        prop_assert_eq!(&merged.to_json(), &fixture.reference_json);
    }
}

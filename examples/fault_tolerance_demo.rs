//! Fault-tolerance demo: drive the tick-level platform model directly.
//!
//! The other examples use the platform indirectly through the scheduling
//! simulator. This one exercises `ftsched-platform` on its own: it walks
//! one slot cycle of the Table 2(b) design, reconfigures the checker at
//! every mode boundary, injects a transient fault into a different core in
//! each mode, and prints what the checker does with it — vote it away,
//! silence the channel, or let a wrong value through.
//!
//! Run with:
//!
//! ```text
//! cargo run --example fault_tolerance_demo
//! ```

use ftsched_core::prelude::*;
use ftsched_platform::cpu::CoreId;

fn main() {
    let mut platform = Platform::new(PlatformConfig::default());
    println!(
        "platform boots in {} mode with {} channel(s)\n",
        platform.mode(),
        platform.channel_count()
    );

    // --- FT slot ---------------------------------------------------------
    platform.set_mode(Mode::FaultTolerant);
    platform.inject_fault(&Fault {
        at: Time::from_units(0.1),
        duration: Duration::from_units(0.2),
        core: CoreId(2),
        mask: 0xDEAD_BEEF,
    });
    let report = platform.run_job(
        0,
        /*task seed*/ 10,
        /*units*/ 8,
        Time::from_units(0.1),
    );
    println!("FT slot: particle strike on core 2 while the control job runs");
    println!(
        "  -> {} units committed, {} divergences observed, {} wrong commits (fault MASKED by voting)",
        report.committed_units, report.divergent_units, report.wrong_units
    );
    assert!(report.completed_correctly());
    platform.clear_fault(CoreId(2));

    // --- FS slot ---------------------------------------------------------
    platform.set_mode(Mode::FailSilent);
    platform.inject_fault(&Fault {
        at: Time::from_units(1.0),
        duration: Duration::from_units(0.2),
        core: CoreId(1),
        mask: 0x0BAD_F00D,
    });
    let hit = platform.run_job(0, 20, 8, Time::from_units(1.0));
    let clean = platform.run_job(1, 21, 8, Time::from_units(1.0));
    println!("\nFS slot: particle strike on core 1 (channel 0 = cores 0+1)");
    println!(
        "  -> channel 0: {} units blocked (channel SILENCED), channel 1: {} units committed",
        hit.blocked_units, clean.committed_units
    );
    assert_eq!(hit.committed_units, 0);
    assert!(clean.completed_correctly());
    platform.clear_fault(CoreId(1));

    // --- NF slot ---------------------------------------------------------
    platform.set_mode(Mode::NonFaultTolerant);
    platform.inject_fault(&Fault {
        at: Time::from_units(2.2),
        duration: Duration::from_units(0.2),
        core: CoreId(3),
        mask: 0xFACE_CAFE,
    });
    let corrupted = platform.run_job(3, 30, 8, Time::from_units(2.2));
    let untouched = platform.run_job(0, 31, 8, Time::from_units(2.2));
    println!("\nNF slot: particle strike on core 3 (every core is its own channel)");
    println!(
        "  -> core 3 committed {} WRONG values, core 0 stayed clean ({} correct commits)",
        corrupted.wrong_units, untouched.committed_units
    );
    assert!(corrupted.wrong_units > 0);
    assert!(untouched.completed_correctly());

    // --- the ledger ------------------------------------------------------
    let stats = platform.stats();
    println!("\nplatform ledger after one cycle:");
    println!("  reconfigurations : {}", stats.reconfigurations);
    println!("  faults injected  : {}", stats.faults_injected);
    println!("  units masked     : {}", stats.units_masked);
    println!("  units blocked    : {}", stats.units_blocked);
    println!("  wrong commits    : {}", stats.wrong_commits);
    println!(
        "  memory integrity : {}",
        if platform.memory().integrity_preserved() {
            "preserved"
        } else {
            "violated (only by NF-mode work, as designed)"
        }
    );

    // The job-level classification used by the scheduling simulator agrees
    // with what the checker just did.
    assert_eq!(
        classify_outcome(Mode::FaultTolerant, true),
        JobOutcome::CorrectMasked
    );
    assert_eq!(
        classify_outcome(Mode::FailSilent, true),
        JobOutcome::SilencedLost
    );
    assert_eq!(
        classify_outcome(Mode::NonFaultTolerant, true),
        JobOutcome::WrongResult
    );
    println!("\njob-level outcome classification matches the checker behaviour — done.");
}

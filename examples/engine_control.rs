//! Engine control: the motivating scenario of the paper's §2.2.
//!
//! "Consider an application which controls a car engine and shows its
//! activity on a screen. While we could accept the visualization to be
//! degraded, the control algorithm must produce the correct result despite
//! the presence of faults."
//!
//! This example builds such an application from scratch — fault-tolerant
//! control loops, fail-silent diagnostics, best-effort visualisation —
//! partitions it automatically, designs the slot parameters, and then
//! subjects the running system to a seeded burst of transient faults to
//! show that the control tasks never produce a wrong result while the
//! visualisation tasks may.
//!
//! Run with:
//!
//! ```text
//! cargo run --example engine_control
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_design::problem::DesignProblem;

fn build_application() -> TaskSet {
    let mut tasks = Vec::new();
    let mut add = |id: u32, name: &str, wcet: f64, period: f64, mode: Mode| {
        tasks.push(
            TaskBuilder::new(id)
                .name(name)
                .wcet(wcet)
                .period(period)
                .mode(mode)
                .build()
                .expect("valid task"),
        );
    };

    // Fault-tolerant engine control: wrong actuation is unacceptable.
    add(1, "fuel-injection", 0.8, 5.0, Mode::FaultTolerant);
    add(2, "ignition-timing", 0.6, 10.0, Mode::FaultTolerant);
    add(3, "knock-control", 0.5, 20.0, Mode::FaultTolerant);

    // Fail-silent diagnostics: a wrong verdict must never propagate, but a
    // missed sample is tolerable.
    add(4, "lambda-monitor", 0.7, 10.0, Mode::FailSilent);
    add(5, "misfire-detection", 0.9, 15.0, Mode::FailSilent);
    add(6, "obd-logger", 1.0, 40.0, Mode::FailSilent);

    // Non-fault-tolerant visualisation and comfort functions.
    add(7, "dashboard-render", 2.0, 16.0, Mode::NonFaultTolerant);
    add(8, "trip-computer", 1.0, 20.0, Mode::NonFaultTolerant);
    add(9, "climate-control", 1.5, 25.0, Mode::NonFaultTolerant);
    add(10, "infotainment", 3.0, 40.0, Mode::NonFaultTolerant);

    TaskSet::new(tasks).expect("valid task set")
}

fn main() {
    let tasks = build_application();
    println!(
        "engine-control application: {} tasks, U = {:.3}",
        tasks.len(),
        tasks.utilization()
    );

    // Automatic partitioning (the paper partitions manually; here the
    // worst-fit-decreasing heuristic balances the channels).
    let partition = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing)
        .expect("the workload fits on the platform");
    for mode in Mode::ALL {
        let channels = partition.mode(mode).channel_task_sets(&tasks).unwrap();
        let loads: Vec<String> = channels
            .iter()
            .map(|c| format!("{:.3}", c.utilization()))
            .collect();
        println!(
            "  {mode}: {} channel(s), per-channel utilisation [{}]",
            channels.len(),
            loads.join(", ")
        );
    }

    // Design with a realistic switching overhead.
    let problem = DesignProblem::with_total_overhead(
        tasks.clone(),
        partition,
        0.06,
        Algorithm::EarliestDeadlineFirst,
    )
    .expect("valid design problem");
    let region = RegionConfig::for_problem(&problem);
    let config = PipelineConfig {
        region,
        ..PipelineConfig::default()
    };

    let outcome = design_and_validate(&problem, DesignGoal::MinimizeOverheadBandwidth, &config)
        .expect("a feasible design exists");
    println!(
        "\nchosen design: P = {:.3}, Q~FT = {:.3}, Q~FS = {:.3}, Q~NF = {:.3}, overhead bandwidth {:.1}%",
        outcome.solution.period,
        outcome.solution.allocation.useful[Mode::FaultTolerant],
        outcome.solution.allocation.useful[Mode::FailSilent],
        outcome.solution.allocation.useful[Mode::NonFaultTolerant],
        outcome.solution.overhead_bandwidth() * 100.0,
    );
    println!(
        "fault-free validation: {} jobs, {} deadline misses",
        outcome.simulation.released_jobs, outcome.simulation.deadline_misses
    );

    // Now hammer the platform with seeded transient faults (one every ~15
    // time units on average) and check the mode guarantees.
    let mut rng = StdRng::seed_from_u64(2007);
    let horizon = tasks.hyperperiod() * 2.0;
    let faults = FaultSchedule::poisson(
        &mut rng,
        Time::from_units(horizon),
        Duration::from_units(15.0),
        Duration::from_units(0.2),
    );
    println!(
        "\ninjecting {} transient faults over {horizon:.0} time units",
        faults.len()
    );
    let faulty_config = PipelineConfig {
        fault_schedule: faults,
        ..config
    };
    let faulty = design_and_validate(
        &problem,
        DesignGoal::MinimizeOverheadBandwidth,
        &faulty_config,
    )
    .expect("same design, now with faults");

    let report = &faulty.simulation;
    for mode in Mode::ALL {
        let o = report.outcomes[mode];
        println!(
            "  {mode}: {} jobs ok, {} masked, {} silenced, {} corrupted",
            o.correct_no_fault, o.correct_masked, o.silenced_lost, o.wrong_result
        );
    }
    assert_eq!(
        report.outcomes[Mode::FaultTolerant].wrong_result,
        0,
        "the control loops must never commit a wrong result"
    );
    assert_eq!(
        report.outcomes[Mode::FailSilent].wrong_result,
        0,
        "the diagnostics must never propagate a wrong verdict"
    );
    println!(
        "\ncontrol and diagnostics stayed clean; visualisation absorbed {} corrupted job(s) — \
         exactly the trade-off the flexible platform is designed for.",
        report.outcomes[Mode::NonFaultTolerant].wrong_result
    );
}

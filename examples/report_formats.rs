//! Report formats: the compact columnar encoding and its guarantees.
//!
//! Runs a small campaign, encodes the report in the columnar format,
//! proves the round trip is lossless (`decode ∘ encode` is the
//! identity, so `ftsched convert` can never change a report's bytes),
//! compares the sizes, and folds two columnar shard files back into the
//! unsharded report with the streaming merge.
//!
//! Run with:
//!
//! ```text
//! cargo run --example report_formats
//! ```

use ftsched_campaign::prelude::*;
use ftsched_campaign::{columnar, ExecutorConfig, ShardInfo};

fn main() {
    // 1. A small validation campaign with every optional metric on, so
    //    the report carries histograms, margins and latency curves.
    let spec = CampaignSpec {
        algorithms: vec![Algorithm::EarliestDeadlineFirst],
        utilizations: vec![0.6, 1.0, 1.4],
        trials_per_scenario: 10,
        kind: TrialKind::DesignAndValidate,
        faults: FaultModel::Poisson {
            mean_interarrival: 40.0,
            fault_duration: 0.2,
        },
        response_histogram: Some(ResponseHistogramSpec {
            bin_width: 0.5,
            bins: 24,
        }),
        latency_curves: Some(LatencyCurveSpec {
            bin_width: 0.0625,
            bins: 24,
        }),
        ..CampaignSpec::base("report-formats-demo")
    };
    let exec = ExecutorConfig {
        progress: false,
        heartbeat: false,
        ..ExecutorConfig::default()
    };
    let report = run_campaign(&spec, &exec).expect("campaign runs");

    // 2. Both encodings of the same report. JSON is the readable,
    //    diff-able default; columnar is the compact archival/transport
    //    form with an FNV-1a integrity footer.
    let json = report.to_json();
    let encoded = columnar::encode_report(&report);
    println!("=== Encodings of one report ===");
    println!("pretty JSON : {:>8} bytes", json.len());
    println!(
        "columnar    : {:>8} bytes  ({:.1}x smaller)",
        encoded.len(),
        json.len() as f64 / encoded.len() as f64
    );
    println!("\ncolumnar head:");
    for line in encoded.lines().take(4) {
        println!("  {line}");
    }
    println!("  ...");
    println!("  {}", encoded.lines().last().unwrap());

    // 3. The round trip is the identity — struct-exact, so every
    //    rendering (JSON, CSV, table) of the decoded report is
    //    byte-identical to the original's.
    let decoded = columnar::read_report_str(&encoded).expect("decodes");
    assert_eq!(decoded, report);
    assert_eq!(decoded.to_json(), json);
    println!("\nJSON -> columnar -> JSON: byte-identical ✓");

    // 4. Shard files fold back block-by-block: `merge_columnar` streams
    //    scenario blocks straight into the accumulator (peak memory is
    //    one scenario, not one campaign) and still reproduces the
    //    unsharded bytes exactly.
    let dir = std::env::temp_dir().join(format!("ftsched-report-formats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let paths: Vec<_> = (0..2)
        .map(|index| {
            let shard = ShardInfo { index, count: 2 };
            let part = run_campaign_shard(&spec, &exec, Some(shard)).expect("shard runs");
            let path = dir.join(format!("shard-{index}.ftcr"));
            std::fs::write(&path, columnar::encode_report(&part)).expect("write shard");
            path
        })
        .collect();
    let merged = merge_columnar(&paths).expect("streaming merge");
    assert_eq!(columnar::encode_report(&merged), encoded);
    assert_eq!(merged.to_json(), json);
    println!("streaming merge of 2 columnar shards == unsharded report ✓");
    let _ = std::fs::remove_dir_all(&dir);

    // 5. Corruption never passes silently: a single flipped byte trips
    //    the integrity footer.
    let mut tampered = encoded.into_bytes();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x01;
    let err = columnar::read_report_str(&String::from_utf8(tampered).unwrap())
        .expect_err("tampering must be detected");
    println!("flipped one payload byte -> {err}");
}

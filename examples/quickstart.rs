//! Quickstart: reproduce the paper's worked example end to end.
//!
//! Builds the 13-task application of Table 1, runs the design methodology
//! for both design goals of §4, prints the Table 2 rows, and validates the
//! chosen designs in the discrete-event simulator.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ftsched_core::prelude::*;
use ftsched_design::report::{render_required_utilization, render_table1, render_table2_rows};

fn main() {
    // 1. The application: Table 1 (13 sporadic tasks across FT/FS/NF).
    let tasks = paper_taskset();
    println!("=== Table 1: the application task set ===");
    println!("{}", render_table1(&tasks));
    println!(
        "total utilisation U = {:.3}  (FT {:.3}, FS {:.3}, NF {:.3})\n",
        tasks.utilization(),
        tasks.mode_utilization(Mode::FaultTolerant),
        tasks.mode_utilization(Mode::FailSilent),
        tasks.mode_utilization(Mode::NonFaultTolerant),
    );

    // 2. The design problem: manual partition of §4, O_tot = 0.05, EDF.
    let problem = paper_problem(Algorithm::EarliestDeadlineFirst);

    // 3. Solve for both goals demonstrated in the paper and validate each
    //    design by simulation over two hyperperiods.
    let goals = [
        (
            "(b) minimise overhead bandwidth",
            DesignGoal::MinimizeOverheadBandwidth,
        ),
        (
            "(c) maximise redistributable slack",
            DesignGoal::MaximizeSlackBandwidth,
        ),
    ];
    println!("=== Table 2: design solutions (EDF) ===");
    for (label, goal) in goals {
        let outcome = design_and_validate(&problem, goal, &PipelineConfig::default())
            .expect("the paper example is feasible");
        println!("--- {label} ---");
        print!("{}", render_required_utilization(&outcome.solution));
        print!("{}", render_table2_rows(label, &outcome.solution));
        println!(
            "simulation over {:.0} time units: {} jobs, {} deadline misses, integrity {}\n",
            outcome.simulation.horizon,
            outcome.simulation.released_jobs,
            outcome.simulation.deadline_misses,
            if outcome.simulation.integrity_preserved() {
                "preserved"
            } else {
                "VIOLATED"
            },
        );
    }

    // 4. The same design under RM for comparison (Figure 4 shows the RM
    //    region is strictly smaller).
    let rm_problem = paper_problem(Algorithm::RateMonotonic);
    let rm = design_and_validate(
        &rm_problem,
        DesignGoal::MinimizeOverheadBandwidth,
        &PipelineConfig::default(),
    )
    .expect("the RM design is feasible too");
    println!(
        "RM for comparison: max feasible period {:.3} (EDF reaches 2.966), deadline misses {}",
        rm.solution.period, rm.simulation.deadline_misses
    );
}

//! Online admission control: drive the `ftsched serve` engine directly.
//!
//! Builds admission requests over the paper's 13-task application,
//! admits them through the [`ftsched::serve::AdmissionEngine`]'s hot
//! caches, flips the design goal over one platform configuration (a
//! context-cache hit) and prints the engine summary — the same loop
//! `ftsched serve` runs behind a unix socket or stdin/stdout framing.
//!
//! Run with:
//!
//! ```text
//! cargo run --example online_admission
//! ```

use ftsched::analysis::Algorithm;
use ftsched::design::partitioner::PartitionHeuristic;
use ftsched::design::DesignGoal;
use ftsched::serve::{AdmissionEngine, AdmissionRequest, EngineConfig, TaskRequest, Verdict};

fn paper_request(id: u64, goal: DesignGoal, total_overhead: f64) -> AdmissionRequest {
    let tasks = ftsched::task::examples::paper_taskset()
        .iter()
        .map(|t| TaskRequest {
            id: t.id.0,
            wcet: t.wcet,
            period: t.period,
            deadline: t.deadline,
            mode: t.mode,
        })
        .collect();
    AdmissionRequest {
        id,
        tasks,
        algorithm: Algorithm::EarliestDeadlineFirst,
        goal,
        total_overhead,
        // Worst-fit balances the channels; the greedy packings leave the
        // full paper set with no admissible overhead at all.
        heuristic: PartitionHeuristic::WorstFitDecreasing,
    }
}

fn describe(response: &ftsched::serve::AdmissionResponse) {
    match &response.verdict {
        Verdict::Admitted { design } => println!(
            "request {}: ADMITTED  period P = {:.3}, slack {:.3} ({:.1}% bandwidth)",
            response.id,
            design.period,
            design.slack,
            100.0 * design.slack_bandwidth,
        ),
        Verdict::Rejected { reason } => println!("request {}: REJECTED  {reason}", response.id),
        Verdict::Error { reason } => println!("request {}: ERROR     {reason}", response.id),
    }
}

fn main() {
    let engine = AdmissionEngine::new(EngineConfig::default());

    // A platform reconfiguration sequence: the same application under
    // both §4 design goals, a repeat (served from the admission cache),
    // and a greedy partitioning that does not fit.
    let queries = vec![
        paper_request(1, DesignGoal::MinimizeOverheadBandwidth, 0.02),
        paper_request(2, DesignGoal::MaximizeSlackBandwidth, 0.02),
        paper_request(3, DesignGoal::MinimizeOverheadBandwidth, 0.02),
        {
            let mut infeasible = paper_request(4, DesignGoal::MinimizeOverheadBandwidth, 0.02);
            infeasible.heuristic = PartitionHeuristic::FirstFitDecreasing;
            infeasible
        },
    ];

    // Batches fan out over the rayon pool; responses keep request order
    // at any worker count.
    let batch: Vec<Result<AdmissionRequest, String>> = queries.into_iter().map(Ok).collect();
    for response in engine.admit_batch(&batch) {
        describe(&response);
    }

    let summary = engine.summary();
    println!(
        "\n{} requests: {} admitted, {} rejected, {} errors",
        summary.requests, summary.admitted, summary.rejected, summary.errors
    );
    println!(
        "admission cache {} hits / {} misses, context cache {} hits / {} misses",
        summary.admission_cache_hits,
        summary.admission_cache_misses,
        summary.context_cache_hits,
        summary.context_cache_misses
    );
    println!(
        "admission latency p50 {:.0} us, p95 {:.0} us, p99 {:.0} us",
        summary.latency_p50_us, summary.latency_p95_us, summary.latency_p99_us
    );
}

//! Capacity planning: how much workload can the flexible platform admit?
//!
//! Sweeps randomly generated mixed-criticality workloads over a range of
//! total utilisations and reports, for EDF and RM, the fraction of
//! workloads that admit a feasible design (a non-empty feasible-period
//! region of Eq. 15). It also compares the paper's flexible scheme against
//! the static baselines (all-FT lock-step, fully parallel, primary/backup).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use ftsched_core::prelude::*;
use ftsched_design::baseline;
use ftsched_design::problem::DesignProblem;

const SETS_PER_POINT: usize = 40;
const TASKS_PER_SET: usize = 12;
const TOTAL_OVERHEAD: f64 = 0.05;

fn main() {
    let utilizations = [0.6, 0.9, 1.2, 1.5, 1.8, 2.1, 2.4];
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12} {:>14}",
        "U", "EDF", "RM", "lock-step", "parallel", "primary/backup"
    );

    for &target_u in &utilizations {
        let mut rng = StdRng::seed_from_u64(420 + (target_u * 100.0) as u64);
        let config = GeneratorConfig::paper_like(TASKS_PER_SET, target_u);

        let mut feasible_edf = 0usize;
        let mut feasible_rm = 0usize;
        let mut lockstep = 0usize;
        let mut parallel = 0usize;
        let mut primary_backup = 0usize;
        let mut generated = 0usize;

        for _ in 0..SETS_PER_POINT {
            let Ok(tasks) = generate_taskset(&mut rng, &config) else {
                continue;
            };
            let Ok(partition) = partition_system(&tasks, PartitionHeuristic::WorstFitDecreasing)
            else {
                generated += 1;
                continue; // counts as infeasible for the flexible scheme
            };
            generated += 1;
            let problem = DesignProblem::with_total_overhead(
                tasks.clone(),
                partition,
                TOTAL_OVERHEAD,
                Algorithm::EarliestDeadlineFirst,
            )
            .expect("valid problem");
            let region = RegionConfig::for_problem(&problem);

            if baseline::flexible_scheme_schedulable(&problem, &region) {
                feasible_edf += 1;
            }
            let rm_problem = problem.with_algorithm(Algorithm::RateMonotonic);
            if baseline::flexible_scheme_schedulable(&rm_problem, &region) {
                feasible_rm += 1;
            }
            if baseline::static_lockstep_schedulable(&tasks, Algorithm::EarliestDeadlineFirst) {
                lockstep += 1;
            }
            if baseline::static_parallel_schedulable(&tasks, Algorithm::EarliestDeadlineFirst) {
                parallel += 1;
            }
            if baseline::primary_backup_schedulable(&tasks, Algorithm::EarliestDeadlineFirst) {
                primary_backup += 1;
            }
        }

        let pct = |n: usize| 100.0 * n as f64 / generated.max(1) as f64;
        println!(
            "{:>6.2} {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}% {:>13.1}%",
            target_u,
            pct(feasible_edf),
            pct(feasible_rm),
            pct(lockstep),
            pct(parallel),
            pct(primary_backup)
        );
    }

    println!(
        "\nReading the table: the flexible scheme tracks the parallel platform far beyond the\n\
         U = 1 wall that limits the static all-FT lock-step, while still honouring every task's\n\
         fault-robustness requirement (which the parallel baseline does not), and it admits more\n\
         workloads than primary/backup replication once protected tasks dominate the load."
    );
}

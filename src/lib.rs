//! # ftsched — workspace facade
//!
//! Umbrella crate for the `ftsched` reproduction of *"A Flexible Scheme
//! for Scheduling Fault-Tolerant Real-Time Tasks on Multiprocessors"*
//! (Cirinei, Bini, Lipari, Ferrari — IPPS 2007). It re-exports every
//! subsystem crate and anchors the workspace-level integration tests
//! (`tests/`) and runnable walkthroughs (`examples/`).
//!
//! | crate | contents |
//! |-------|----------|
//! | [`task`] | sporadic task model, modes, partitions, generators |
//! | [`analysis`] | supply functions, FP/EDF hierarchical tests, `minQ` |
//! | [`platform`] | the 4-core lock-step platform with fault injection |
//! | [`sim`] | slot-based discrete-event scheduling simulator |
//! | [`design`] | feasible-period region, quanta selection, design goals |
//! | [`core`] | the design-and-validate pipeline |
//! | [`campaign`] | parallel, deterministic experiment-campaign engine |
//! | [`serve`] | online admission-control service with hot-context caches |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use ftsched_analysis as analysis;
pub use ftsched_campaign as campaign;
pub use ftsched_core as core;
pub use ftsched_design as design;
pub use ftsched_platform as platform;
pub use ftsched_serve as serve;
pub use ftsched_sim as sim;
pub use ftsched_task as task;

/// The most commonly used items of every layer, re-exported.
pub mod prelude {
    pub use ftsched_campaign::prelude::*;
    pub use ftsched_core::prelude::*;
}

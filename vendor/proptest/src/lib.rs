//! Offline stand-in for `proptest`, sufficient for this workspace.
//!
//! Implements the strategy/`proptest!` subset the property tests use:
//! range strategies over integers and floats, tuples, `prop_map` /
//! `prop_flat_map`, `any::<T>()`, `prop::collection::vec`, `Vec<S>` as a
//! strategy, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * cases are sampled from a **fixed deterministic seed** (derived from
//!   the test name), so failures reproduce exactly across runs and
//!   machines;
//! * there is **no shrinking** — the failing inputs are reported as
//!   drawn.

use std::fmt;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RNG used to drive strategies.
pub type TestRng = StdRng;

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic per-test RNG (used by `proptest!`; public so
/// the macro expansion needs no `rand` dependency in the calling crate).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// FNV-1a hash of the test name: a stable per-test seed.
pub fn seed_for_test(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<F, U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { base: self, f }
    }

    /// Chains into a value-dependent strategy.
    fn prop_flat_map<F, S>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMapStrategy { base: self, f }
    }
}

/// `prop_map` adapter.
pub struct MapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> Strategy for MapStrategy<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMapStrategy<B, F> {
    base: B,
    f: F,
}

impl<B, F, S> Strategy for FlatMapStrategy<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> S,
    S: Strategy,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);

/// A vector of strategies generates a vector of values (used by the
/// build-N-strategies-then-map pattern).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

impl Arbitrary for () {
    fn arbitrary(_rng: &mut TestRng) -> Self {}
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, sign-balanced, broad magnitude spread.
        let x: f64 = rng.gen();
        let scale = rng.gen_range(-100i32..100) as f64;
        (x - 0.5) * scale.exp2()
    }
}

/// Strategy wrapper for [`Arbitrary`] types.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// The `proptest::prop` namespace subset.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};
        use rand::Rng;

        /// Strategy for vectors with element strategy `element` and a
        /// length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of `element` values.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything the tests glob-import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng: $crate::TestRng = $crate::new_rng(
                $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0.5f64..2.5, (a, b) in (1usize..4, 10i64..=12)) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
            prop_assert!((1..4).contains(&a));
            prop_assert!((10..=12).contains(&b));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(0u32..5, 2..=6), w in (0u32..3).prop_map(|x| x * 2)) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert_eq!(w % 2, 0);
        }

        #[test]
        fn flat_map_chains(len in 1usize..5, v in (2usize..4).prop_flat_map(|n| prop::collection::vec(0u8..10, n..=n))) {
            prop_assert!(len >= 1);
            prop_assert!(v.len() == 2 || v.len() == 3);
        }
    }
}

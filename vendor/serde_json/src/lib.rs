//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] tree as JSON text.
//!
//! Guarantees relied on by the workspace:
//!
//! * **Round-trip exactness** — `f64` values are written with Rust's
//!   shortest round-trip `Display`, so `from_str(to_string(x)) == x` for
//!   all finite floats.
//! * **Determinism** — output depends only on the `Value` tree (and the
//!   vendored `serde` sorts hash-map entries), so equal values always
//!   produce byte-identical text. The campaign engine's thread-count
//!   invariance test depends on this.

use std::fmt::Write as _;

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serialises a value into its [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialises a value to compact JSON.
///
/// # Errors
///
/// Returns an [`Error`] only for unsupported map keys (never for the
/// workspace's types).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises a value to human-readable, two-space-indented JSON.
///
/// # Errors
///
/// Same as [`to_string`].
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value.
///
/// # Errors
///
/// Returns an [`Error`] describing the first syntax or shape problem.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value_complete(text)?;
    T::from_value(&value)
}

/// Parses JSON text into a raw [`Value`] tree.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON.
pub fn parse_value_complete(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's Display prints the shortest decimal that parses
                // back to the same f64 — exact round-trips for free.
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over bytes; strings re-validated as UTF-8).

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error::custom(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::custom(
                                        "expected a low surrogate after a high surrogate",
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                // `-0` must stay a float: `I64(0)` would drop the sign
                // bit that distinguishes -0.0 from 0.0 on the way to an
                // f64 target (integer targets still coerce, see
                // `Value::as_i64`).
                if n != 0 {
                    return Ok(Value::I64(n));
                }
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers_round_trip() {
        let v = vec![(1u32, -2i64, 0.5f64, true)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, i64, f64, bool)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            2.966,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -0.0,
            12345.6789e-200,
        ] {
            let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
            // Bitwise, not `==`: plain equality would let `-0.0` come
            // back as `0.0` unnoticed.
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn negative_zero_integers_coerce_but_floats_keep_the_sign() {
        assert_eq!(
            from_str::<f64>("-0").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(from_str::<i64>("-0").unwrap(), 0);
        assert_eq!(from_str::<u64>("-0").unwrap(), 0);
        assert_eq!(from_str::<i64>("-1").unwrap(), -1);
        assert!(from_str::<u64>("-1").is_err());
    }

    #[test]
    fn surrogate_pairs_parse_and_bad_pairs_are_rejected() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert!(from_str::<String>("\"\\ud801\\u0041\"").is_err());
        assert!(from_str::<String>("\"\\ud801x\"").is_err());
        assert!(from_str::<String>("\"\\udc00\"").is_err());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<Vec<u64>>("[1] trailing").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}

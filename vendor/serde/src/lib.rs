//! Offline stand-in for `serde`, sufficient for this workspace.
//!
//! The build environment has no crates.io access, so instead of the real
//! serde (trait-dispatched serializers, proc-macro derives via `syn`) this
//! crate provides the smallest data model that supports the workspace's
//! needs: every serialisable type converts to and from a self-describing
//! [`Value`] tree, and `serde_json` (also vendored) renders that tree as
//! JSON text. The derive macros come from the sibling `serde_derive`
//! shim and target the same two traits.
//!
//! Representation choices mirror real serde's JSON conventions so specs
//! and reports stay interoperable if the real crates are ever dropped in:
//! externally tagged enums, newtype structs as their inner value, unit
//! variants as strings, maps with stringified keys.
//!
//! Determinism note: map entries produced from `HashMap`s are sorted by
//! key at serialisation time, so serialised output never depends on hash
//! iteration order. The campaign engine's byte-identical-report guarantee
//! relies on this.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of serialised data (the shim's data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order (sorted for hash maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) if x >= 0 => Some(x as u64),
            // The JSON parser keeps `-0` as a float so f64 targets see
            // the sign bit; integer targets read it as plain zero.
            Value::F64(x) => (x == 0.0).then_some(0),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            Value::F64(x) => (x == 0.0).then_some(0),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Finds a field by name in map entries (used by the derive macro).
pub fn get_field<'a>(m: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    m.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialisation/deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Builds a type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error {
            msg: format!("expected {what}, got {}", got.kind()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serialises `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_u64().ok_or_else(|| Error::expected("an unsigned integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let x = v.as_i64().ok_or_else(|| Error::expected("an integer", v))?;
                <$t>::try_from(x).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null // mirrors serde_json's lossy handling of NaN/inf
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("a number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        (*self as f64).to_value()
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("a boolean", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("a string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("a one-character string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected exactly one character")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers.

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::expected("a sequence", v))?;
        s.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected an array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("a sequence", v))?;
                if s.len() != $n {
                    return Err(Error::custom(format!(
                        "expected a tuple of length {}, got {}", $n, s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

// ---------------------------------------------------------------------------
// Maps. Keys serialise through their Value form and are stringified, like
// serde_json does for integer-keyed maps; entries are sorted by key so the
// output is independent of hash iteration order.

fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error::custom(format!(
            "map key must be a string-like value, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::U64(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::I64(n)
    } else if let Ok(x) = s.parse::<f64>() {
        Value::F64(x)
    } else {
        Value::Str(s.to_owned())
    }
}

fn map_to_value<'a, K, V, I>(entries: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut out: Vec<(String, Value)> = entries
        .map(|(k, v)| {
            let key = key_to_string(k.to_value()).expect("serde shim: unsupported map key type");
            (key, v.to_value())
        })
        .collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Map(out)
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("a map", v))?;
        m.iter()
            .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::expected("a map", v))?;
        m.iter()
            .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

//! Offline stand-in for `rayon`, sufficient for this workspace.
//!
//! Provides the data-parallel iterator subset the workspace uses
//! (`par_iter`/`into_par_iter` with `map`, `filter_map`, `collect`,
//! `reduce`, `count`) over plain `std::thread::scope` workers.
//!
//! Semantics are deliberately *stricter* than real rayon:
//!
//! * results are always materialised in **input order**, and
//! * `reduce` folds the ordered results **left-to-right** from the
//!   identity,
//!
//! so every pipeline is deterministic regardless of worker count —
//! convenient for the experiment campaigns, and a superset of rayon's
//! (weaker) unordered-reduction contract so code written against this
//! shim remains correct under the real crate.
//!
//! Worker count comes from `RAYON_NUM_THREADS` or
//! `std::thread::available_parallelism`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The glob-importable API surface, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

/// Number of worker threads to use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// An indexed, element-wise parallel pipeline.
///
/// `p_get(i)` returns the pipeline's output for input index `i`, or
/// `None` when a `filter_map` stage dropped it.
pub trait ParallelIterator: Sized + Sync {
    /// The element type produced by the pipeline.
    type Item: Send;

    /// Number of input indices.
    fn p_len(&self) -> usize;

    /// Evaluates the pipeline at one input index.
    fn p_get(&self, index: usize) -> Option<Self::Item>;

    /// Element-wise transformation.
    fn map<F, R>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Element-wise transformation that can drop elements.
    fn filter_map<F, R>(self, f: F) -> FilterMap<Self, F>
    where
        F: Fn(Self::Item) -> Option<R> + Sync,
        R: Send,
    {
        FilterMap { base: self, f }
    }

    /// Element-wise filter.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    /// Runs the pipeline and gathers the surviving elements in input
    /// order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_ordered_vec(run(&self))
    }

    /// Runs the pipeline and folds the ordered results left-to-right.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
    {
        run(&self).into_iter().fold(identity(), &op)
    }

    /// Number of elements surviving the pipeline.
    fn count(self) -> usize {
        run(&self).len()
    }

    /// Sums the surviving elements.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
    {
        run(&self).into_iter().sum()
    }
}

/// Evaluates an indexed pipeline over scoped worker threads, preserving
/// input order. Workers claim fixed-size blocks from an atomic cursor, so
/// scheduling is dynamic but the result is order-stable.
fn run<P: ParallelIterator>(pipeline: &P) -> Vec<P::Item> {
    let n = pipeline.p_len();
    if n == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return (0..n).filter_map(|i| pipeline.p_get(i)).collect();
    }
    const BLOCK: usize = 32;
    let blocks = n.div_ceil(BLOCK);
    let cursor = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<Vec<P::Item>>>> =
        (0..blocks).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let b = cursor.fetch_add(1, Ordering::Relaxed);
                if b >= blocks {
                    break;
                }
                let lo = b * BLOCK;
                let hi = (lo + BLOCK).min(n);
                let items: Vec<P::Item> = (lo..hi).filter_map(|i| pipeline.p_get(i)).collect();
                *slots[b].lock().unwrap() = Some(items);
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker finished every claimed block")
        })
        .collect()
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_get(&self, index: usize) -> Option<R> {
        self.base.p_get(index).map(&self.f)
    }
}

/// `filter_map` adapter.
pub struct FilterMap<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for FilterMap<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> Option<R> + Sync,
    R: Send,
{
    type Item = R;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_get(&self, index: usize) -> Option<R> {
        self.base.p_get(index).and_then(&self.f)
    }
}

/// `filter` adapter.
pub struct Filter<B, F> {
    base: B,
    f: F,
}

impl<B, F> ParallelIterator for Filter<B, F>
where
    B: ParallelIterator,
    F: Fn(&B::Item) -> bool + Sync,
{
    type Item = B::Item;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn p_get(&self, index: usize) -> Option<B::Item> {
        self.base.p_get(index).filter(|x| (self.f)(x))
    }
}

/// Conversion into a parallel pipeline by value.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the pipeline.
    fn into_par_iter(self) -> Self::Iter;
}

/// Leaf source: an integer range.
pub struct RangePar<T> {
    start: T,
    len: usize,
}

macro_rules! impl_range_par {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = RangePar<$t>;
            fn into_par_iter(self) -> RangePar<$t> {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                RangePar { start: self.start, len }
            }
        }
        impl ParallelIterator for RangePar<$t> {
            type Item = $t;
            fn p_len(&self) -> usize {
                self.len
            }
            fn p_get(&self, index: usize) -> Option<$t> {
                Some(self.start + index as $t)
            }
        }
    )*};
}
impl_range_par!(usize, u32, u64, i32, i64);

/// Leaf source: a slice.
pub struct SlicePar<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SlicePar<'a, T> {
    type Item = &'a T;

    fn p_len(&self) -> usize {
        self.items.len()
    }

    fn p_get(&self, index: usize) -> Option<&'a T> {
        Some(&self.items[index])
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn into_par_iter(self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

/// Leaf source: an owned vector.
pub struct VecPar<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for VecPar<T> {
    type Item = T;

    fn p_len(&self) -> usize {
        self.items.len()
    }

    fn p_get(&self, index: usize) -> Option<T> {
        Some(self.items[index].clone())
    }
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecPar<T>;

    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: self }
    }
}

/// Conversion into a borrowing parallel pipeline (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Pipeline type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Builds the pipeline over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = SlicePar<'a, T>;

    fn par_iter(&'a self) -> SlicePar<'a, T> {
        SlicePar { items: self }
    }
}

/// Ordered collection targets for [`ParallelIterator::collect`].
pub trait FromParallelIterator<T>: Sized {
    /// Builds the collection from the ordered pipeline output.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered_vec(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect_matches_sequential() {
        let par: Vec<u64> = (0u64..1000).into_par_iter().map(|x| x * x).collect();
        let seq: Vec<u64> = (0u64..1000).map(|x| x * x).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn filter_map_preserves_order() {
        let par: Vec<usize> = (0usize..500)
            .into_par_iter()
            .filter_map(|x| (x % 3 == 0).then_some(x))
            .collect();
        let seq: Vec<usize> = (0..500).filter(|x| x % 3 == 0).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn slice_par_iter_and_result_collect() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ok: Result<Vec<f64>, String> =
            xs.par_iter().map(|&x| Ok::<f64, String>(x + 1.0)).collect();
        assert_eq!(ok.unwrap()[99], 100.0);
        let err: Result<Vec<f64>, String> = xs
            .par_iter()
            .map(|&x| {
                if x > 50.0 {
                    Err("too big".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn reduce_is_deterministic() {
        let a: u64 = (0u64..10_000)
            .into_par_iter()
            .map(|x| x % 7)
            .reduce(|| 0, |x, y| x + y);
        let b: u64 = (0u64..10_000).map(|x| x % 7).sum();
        assert_eq!(a, b);
    }
}

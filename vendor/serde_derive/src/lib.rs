//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal `serde` data model (a self-describing
//! `Value` tree with `to_value`/`from_value` traits) and this proc-macro
//! crate derives impls for it. The macro hand-parses the item's token
//! stream (no `syn`/`quote` available) and supports exactly the shapes the
//! workspace uses:
//!
//! * named-field structs (including one type parameter with no bounds,
//!   e.g. `PerMode<T>`),
//! * tuple structs (newtype and wider) and unit structs,
//! * enums with unit, tuple and struct variants (externally tagged, the
//!   serde default representation).
//!
//! Unsupported shapes (lifetimes, const generics, `where` clauses) fail
//! loudly at compile time rather than generating wrong code.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsed shape of the item.

struct Item {
    name: String,
    /// Plain type-parameter names (`T`, `U`, ...). Lifetimes/consts are
    /// rejected.
    generics: Vec<String>,
    body: Body,
}

enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// ---------------------------------------------------------------------------
// Token-level parsing helpers.

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

fn ident_string(t: Option<&TokenTree>) -> Option<String> {
    match t {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn group_with(t: Option<&TokenTree>, delim: Delimiter) -> Option<Group> {
    match t {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => Some(g.clone()),
        _ => None,
    }
}

/// Skips `#[...]` attributes (doc comments included) starting at `i`.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while is_punct(toks.get(i), '#') {
        i += 2; // '#' plus the bracketed group
    }
    i
}

fn skip_visibility(toks: &[TokenTree], mut i: usize) -> usize {
    if is_ident(toks.get(i), "pub") {
        i += 1;
        if group_with(toks.get(i), Delimiter::Parenthesis).is_some() {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_visibility(&toks, i);

    let kw = ident_string(toks.get(i)).expect("serde_derive: expected `struct` or `enum`");
    i += 1;
    let name = ident_string(toks.get(i)).expect("serde_derive: expected a type name");
    i += 1;

    let mut generics = Vec::new();
    if is_punct(toks.get(i), '<') {
        let (params, next) = parse_generics(&toks, i);
        generics = params;
        i = next;
    }
    assert!(
        !is_ident(toks.get(i), "where"),
        "serde_derive: `where` clauses are not supported (type `{name}`)"
    );

    let body = match kw.as_str() {
        "struct" => {
            if let Some(g) = group_with(toks.get(i), Delimiter::Brace) {
                Body::Named(parse_named_fields(&g))
            } else if let Some(g) = group_with(toks.get(i), Delimiter::Parenthesis) {
                Body::Tuple(count_tuple_fields(&g))
            } else if is_punct(toks.get(i), ';') {
                Body::Unit
            } else {
                panic!("serde_derive: unrecognised struct body for `{name}`");
            }
        }
        "enum" => {
            let g = group_with(toks.get(i), Delimiter::Brace)
                .unwrap_or_else(|| panic!("serde_derive: expected enum body for `{name}`"));
            Body::Enum(parse_variants(&g))
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        generics,
        body,
    }
}

/// Parses `<...>` starting at the `<` token; returns the type-parameter
/// names and the index just past the closing `>`.
fn parse_generics(toks: &[TokenTree], start: usize) -> (Vec<String>, usize) {
    let mut depth = 0i32;
    let mut i = start;
    let mut segments: Vec<Vec<&TokenTree>> = vec![Vec::new()];
    loop {
        let t = toks.get(i).expect("serde_derive: unterminated generics");
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => {
                    depth += 1;
                    if depth == 1 {
                        i += 1;
                        continue;
                    }
                }
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                ',' if depth == 1 => {
                    segments.push(Vec::new());
                    i += 1;
                    continue;
                }
                _ => {}
            }
        }
        segments.last_mut().unwrap().push(t);
        i += 1;
    }
    let mut params = Vec::new();
    for seg in segments.iter().filter(|s| !s.is_empty()) {
        if let TokenTree::Punct(p) = seg[0] {
            assert!(
                p.as_char() != '\'',
                "serde_derive: lifetime parameters are not supported"
            );
        }
        match seg[0] {
            TokenTree::Ident(id) if id.to_string() == "const" => {
                panic!("serde_derive: const generics are not supported")
            }
            TokenTree::Ident(id) => params.push(id.to_string()),
            _ => panic!("serde_derive: unrecognised generic parameter"),
        }
    }
    (params, i)
}

/// Extracts field names from a `{ ... }` body; field types are skipped
/// (angle-bracket aware) because the generated code never needs them.
fn parse_named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        i = skip_visibility(&toks, i);
        let name = ident_string(toks.get(i)).expect("serde_derive: expected a field name");
        fields.push(name);
        i += 1;
        assert!(
            is_punct(toks.get(i), ':'),
            "serde_derive: expected `:` after field name"
        );
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a `( ... )` body (top-level commas, angle aware).
fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1usize;
    let mut last_was_comma = false;
    for t in &toks {
        last_was_comma = false;
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    fields += 1;
                    last_was_comma = true;
                }
                _ => {}
            }
        }
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = ident_string(toks.get(i)).expect("serde_derive: expected a variant name");
        i += 1;
        let kind = if let Some(p) = group_with(toks.get(i), Delimiter::Parenthesis) {
            i += 1;
            VariantKind::Tuple(count_tuple_fields(&p))
        } else if let Some(b) = group_with(toks.get(i), Delimiter::Brace) {
            i += 1;
            VariantKind::Named(parse_named_fields(&b))
        } else {
            VariantKind::Unit
        };
        // Skip to the next variant (tolerates explicit discriminants).
        while i < toks.len() && !is_punct(toks.get(i), ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation. Output is built as a string and re-parsed; all paths are
// fully qualified so the generated code is hygiene-independent.

const ALLOW: &str = "#[automatically_derived]\n#[allow(unused_variables, unused_mut, \
                     unreachable_code, unreachable_patterns, clippy::all)]\n";

fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), String::new())
    } else {
        let bounds: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let params = item.generics.join(", ");
        (format!("<{}>", bounds.join(", ")), format!("<{params}>"))
    }
}

fn gen_serialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Serialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{}\n::serde::Value::Map(__fields)",
                pushes.join("\n")
            )
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", elems.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| format!("{f}: __{f}")).collect();
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value(__{f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                binds.join(", "),
                                pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{}\n}}", arms.join("\n"))
        }
    };
    format!(
        "{ALLOW}impl{ig} ::serde::Serialize for {name}{tg} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

/// Deserialisation of one named field from map entries `__m` of type `ty`.
fn field_from_map(f: &str, ty: &str) -> String {
    format!(
        "{f}: match ::serde::get_field(__m, \"{f}\") {{\n\
         ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
         ::std::option::Option::None => ::serde::Deserialize::from_value(&::serde::Value::Null)\n\
         .map_err(|_| ::serde::Error::custom(\"missing field `{f}` in `{ty}`\"))?,\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (ig, tg) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_from_map(f, name)).collect();
            format!(
                "let __m = __v.as_map().ok_or_else(|| \
                 ::serde::Error::custom(\"expected a map for `{name}`\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{}\n}})",
                inits.join(",\n")
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Body::Tuple(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| \
                 ::serde::Error::custom(\"expected a sequence for `{name}`\"))?;\n\
                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::Error::custom(\"wrong tuple length for `{name}`\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => return ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__s[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __s = __inner.as_seq().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected a sequence for variant \
                                 `{name}::{vname}`\"))?;\n\
                                 if __s.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::Error::custom(\"wrong tuple length for variant \
                                 `{name}::{vname}`\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vname}({}));\n}}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let scoped = format!("{name}::{vname}");
                            let inits: Vec<String> =
                                fields.iter().map(|f| field_from_map(f, &scoped)).collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                 let __m = __inner.as_map().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected a map for variant \
                                 `{name}::{vname}`\"))?;\n\
                                 return ::std::result::Result::Ok({name}::{vname} {{\n{}\n}});\n}}",
                                inits.join(",\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit}\n_ => ::std::result::Result::Err(\
                 ::serde::Error::custom(\"unknown variant of `{name}`\")),\n}};\n}}\n\
                 if let ::std::option::Option::Some(__m) = __v.as_map() {{\n\
                 if __m.len() == 1 {{\n\
                 let (__k, __inner) = &__m[0];\n\
                 match __k.as_str() {{\n{data}\n_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::Error::custom(\
                 \"invalid value for enum `{name}`\"))",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    format!(
        "{ALLOW}impl{ig} ::serde::Deserialize for {name}{tg} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n}}"
    )
}

//! Offline stand-in for `rand` 0.8, sufficient for this workspace.
//!
//! Implements the slice of the rand 0.8 API the workspace uses — the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! `distributions::{Distribution, Uniform}` — over a xoshiro256++
//! generator seeded through SplitMix64.
//!
//! **Portability note:** unlike the real `StdRng` (which explicitly makes
//! no cross-version reproducibility promise), this implementation is a
//! frozen, documented algorithm: the same seed yields the same stream on
//! every platform and in every future build of this repository. The
//! experiment-campaign engine's per-trial seed derivation builds on that
//! guarantee.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-bits source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` fair).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators. Only the `seed_from_u64` entry point of the real
/// trait is provided (the only one the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the standard seeding sequence for xoshiro.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    ///
    /// Drop-in for `rand::rngs::StdRng` with a frozen, portable stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // An all-zero state is a fixed point; SplitMix64 cannot emit
            // four zeros in a row, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample: Sized {
    /// Draws one value with the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased bounded integer via Lemire-style widening multiply with
/// rejection.
pub(crate) fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low >= span {
            return (m >> 64) as u64;
        }
        // Low slice may be biased; accept only the unbiased region.
        let threshold = span.wrapping_neg() % span;
        if low >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// The `rand::distributions` module subset.
pub mod distributions {
    use super::{Rng, StandardSample};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open interval.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl Uniform<f64> {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new: empty range");
            Uniform { low, high }
        }

        /// Uniform over `[low, high]`.
        pub fn new_inclusive(low: f64, high: f64) -> Self {
            assert!(low <= high, "Uniform::new_inclusive: empty range");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + f64::sample_standard(rng) * (self.high - self.low)
        }
    }

    /// The standard distribution (what [`Rng::gen`] samples from).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: StandardSample> Distribution<T> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }

    pub use super::SampleRange;
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = rng.gen_range(5..=7u32);
            assert!((5..=7).contains(&x));
        }
    }

    #[test]
    fn uniform_distribution_covers_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new(2.0, 4.0);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 3.0).abs() < 0.05);
    }
}

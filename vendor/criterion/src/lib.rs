//! Offline stand-in for `criterion`, sufficient for this workspace.
//!
//! Provides the group/bench/iter API shape the workspace's benches use
//! and measures wall-clock nanoseconds per iteration with a short
//! calibration phase — no statistics, plots or baselines. Output is one
//! line per benchmark: `bench <name> ... <ns/iter> ns/iter (<iters> iters)`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Throughput annotation (accepted, echoed in output).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function(&mut self, name: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&name.to_string(), None, &mut f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{id}", self.name), self.throughput, &mut f);
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{id}", self.name), self.throughput, &mut |b| {
            f(b, input)
        });
    }

    /// Ends the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` for the number of iterations the calibration chose.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: grow the iteration count until one batch costs ≥ ~20 ms
    // (or we hit a cap), then report that batch.
    let mut iters: u64 = 1;
    let (ns, total_iters) = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let elapsed = b.elapsed;
        if elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break (elapsed.as_nanos() as f64 / iters.max(1) as f64, iters);
        }
        // Aim straight at the budget with a safety factor.
        let per_iter = elapsed.as_nanos().max(1) as f64 / iters as f64;
        let target = (25_000_000.0 / per_iter).ceil() as u64;
        iters = target.clamp(iters * 2, 1 << 20);
    };
    match throughput {
        Some(Throughput::Elements(n)) => {
            println!("bench {name:<55} {ns:>14.1} ns/iter ({total_iters} iters, {n} elems/iter)")
        }
        Some(Throughput::Bytes(n)) => {
            println!("bench {name:<55} {ns:>14.1} ns/iter ({total_iters} iters, {n} bytes/iter)")
        }
        None => println!("bench {name:<55} {ns:>14.1} ns/iter ({total_iters} iters)"),
    }
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
